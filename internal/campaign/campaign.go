// Package campaign implements the paper's interoperability assessment
// approach — the primary contribution of the reproduction.
//
// The approach has two phases (§III):
//
//	Preparation Phase
//	  a) select server frameworks     b) select client frameworks
//	  c) create test services (one echo service per native class)
//
//	Testing Phase
//	  a) service description generation  (+ WS-I compliance check)
//	  b) client artifact generation
//	  c) client artifact compilation / instantiation
//	  d) results classification, interleaved with a–c
//
// The campaign runner executes every (published service × client
// framework) combination — 7 239 × 11 = 79 629 tests at full scale —
// classifying each step's outcome into errors (no usable output) and
// warnings (output produced, but the tool reported an issue). Errors
// are disruptive: a step that fails stops the pipeline for that test.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// Step identifies one of the three tested inter-operation steps.
type Step int

// Testing Phase steps.
const (
	StepDescription Step = iota + 1
	StepGeneration
	StepCompilation
)

// String implements fmt.Stringer.
func (s Step) String() string {
	switch s {
	case StepDescription:
		return "service description generation"
	case StepGeneration:
		return "client artifact generation"
	case StepCompilation:
		return "client artifact compilation"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// Outcome classifies one step of one test: whether the tool reported
// at least one warning and whether it reported at least one error.
// The paper counts tests-with-warnings and tests-with-errors, not
// individual messages.
type Outcome struct {
	Warning bool
	Error   bool
}

// merge folds tool issues into the outcome.
func (o *Outcome) mergeIssues(issues []framework.Issue) {
	for _, i := range issues {
		switch {
		case i.Severity >= artifact.SeverityError:
			o.Error = true
		case i.Severity == artifact.SeverityWarning:
			o.Warning = true
		}
	}
}

func (o *Outcome) mergeDiagnostics(diags []artifact.Diagnostic) {
	for _, d := range diags {
		switch {
		case d.Severity >= artifact.SeverityError:
			o.Error = true
		case d.Severity == artifact.SeverityWarning:
			o.Warning = true
		}
	}
}

// PublishedService is one service that survived the description step:
// its WSDL exists and is ready for client-side testing.
type PublishedService struct {
	Server string
	// Class is the parameter class's fully qualified name.
	Class string
	// Doc is the serialized WSDL as clients will consume it.
	Doc []byte
	// Flagged reports whether the compliance check raised any finding
	// (profile violation or extended finding) — the paper's
	// description-step "warning".
	Flagged bool
	// Compliant reports WS-I (official profile) compliance.
	Compliant bool
	// Profiles is the per-profile verdict row: bit i is set when the
	// document satisfies the i-th registered compliance profile
	// (wsi.Profiles() roster order). It feeds the campaign's
	// per-profile compliance matrix.
	Profiles uint64

	// analysis is the lazily computed shared document analysis; the
	// cell pointer (not the cell) is copied with the service, so every
	// copy shares one memoized parse. Nil for services constructed
	// outside the runner — those analyze per call.
	analysis *sharedAnalysis
	// memo is the service's verified structural-shape entry; same-shape
	// services share one and serve their client tests from it. Nil when
	// the memo layer is off, the class failed the shape.Memoizable
	// guard, or the shape failed template verification.
	memo *shapeEntry
}

// sharedAnalysis memoizes the parsed analysis of one published
// document so all clients testing a service share a single
// wsdl.Unmarshal + analyze pass instead of re-doing it once per
// client.
type sharedAnalysis struct {
	once sync.Once
	a    *framework.Analysis
	err  error
}

// Analysis returns the service's shared document analysis, computing
// it on first use. The result is immutable and safe for concurrent
// use by every client framework.
func (s *PublishedService) Analysis() (*framework.Analysis, error) {
	if s.analysis == nil {
		return framework.Analyze(s.Doc)
	}
	s.analysis.once.Do(func() {
		s.analysis.a, s.analysis.err = framework.Analyze(s.Doc)
	})
	return s.analysis.a, s.analysis.err
}

// TestResult is the classified outcome of one (service × client)
// test.
type TestResult struct {
	Server  string
	Client  string
	Class   string
	Gen     Outcome
	Compile Outcome
	// CompileRan reports whether the third step executed (it is
	// skipped when generation produced no artifacts).
	CompileRan bool
}

// ErrorAnywhere reports whether any executed step errored.
func (t *TestResult) ErrorAnywhere() bool { return t.Gen.Error || t.Compile.Error }

// Cell aggregates the (client × server) combination for Table III.
type Cell struct {
	Tests           int
	GenWarnings     int
	GenErrors       int
	CompileWarnings int
	CompileErrors   int
}

// ClientSummary aggregates one client framework across every server —
// the data behind the paper's §IV.A maturity discussion.
type ClientSummary struct {
	Tests           int
	GenWarnings     int
	GenErrors       int
	CompileWarnings int
	CompileErrors   int
	// ErrorsOnFlagged counts errored tests whose service had been
	// flagged by the description-step compliance check;
	// ErrorsOnClean counts errored tests against unflagged services.
	// The paper observes that mature tools "fail almost only in
	// presence of non WS-I compliant WSDL documents".
	ErrorsOnFlagged int
	ErrorsOnClean   int
}

// Mature reports the paper's §IV.A maturity criterion for compiled
// artifact generators: the tool never produces code that later fails
// or warns at compilation, so all its failures are clean, immediate
// generation errors.
func (c *ClientSummary) Mature() bool {
	return c.CompileErrors == 0 && c.CompileWarnings == 0
}

// ServerSummary aggregates one server framework's column of Fig. 4.
type ServerSummary struct {
	Created  int
	Deployed int
	// DescriptionWarnings counts published services flagged by the
	// compliance check; DescriptionErrors is always zero by
	// construction (undeployable services are excluded, following the
	// paper's optimistic assumption).
	DescriptionWarnings int
	DescriptionErrors   int
	Tests               int
	GenWarnings         int
	GenErrors           int
	CompileWarnings     int
	CompileErrors       int
}

// ProfileCompliance is one compliance profile's row of the campaign's
// per-profile matrix: how many of each server's published services
// satisfied the profile's core assertions.
type ProfileCompliance struct {
	// ID and Name identify the registered wsi profile.
	ID   string
	Name string
	// Compliant maps server name → count of published services that
	// satisfied the profile. Checked counts per server are
	// Result.Servers[name].Deployed.
	Compliant map[string]int
	// TotalCompliant sums Compliant across servers.
	TotalCompliant int
}

// Result is the complete campaign outcome.
type Result struct {
	// Servers maps server framework name to its Fig. 4 column.
	Servers map[string]*ServerSummary
	// Clients maps client framework name to its cross-server summary.
	Clients map[string]*ClientSummary
	// Matrix maps client name → server name → Table III cell.
	Matrix map[string]map[string]*Cell
	// ServerOrder and ClientOrder preserve the study's presentation
	// order for reporting.
	ServerOrder []string
	ClientOrder []string

	// TotalServices, TotalPublished and TotalTests are the campaign
	// scale numbers (22 024 / 7 239 / 79 629 at full scale).
	TotalServices  int
	TotalPublished int
	TotalTests     int

	// SameFrameworkErrors counts tests where the client and server
	// subsystems belong to the same framework and an error occurred
	// (307 in the study).
	SameFrameworkErrors int
	// InteropErrors counts error situations across the generation and
	// compilation steps.
	InteropErrors int

	// FlaggedServices counts services flagged at the description step
	// (86); FlaggedCleanServices counts those that nevertheless passed
	// every client test without errors (4).
	FlaggedServices      int
	FlaggedCleanServices int
	// UnflaggedFailingServices counts services the compliance check
	// passed without findings that nevertheless errored in at least
	// one client — the paper's "among those that pass, some still
	// present interoperability issues" observation.
	UnflaggedFailingServices int

	// Failures retains every test that errored, in deterministic
	// (service, client) order, when Config.KeepFailures is set. It is
	// the data behind the Table III footnotes (1 588 entries at full
	// scale).
	Failures []TestResult

	// Profiles is the per-profile compliance matrix: one row per
	// registered compliance profile (wsi.Profiles() roster order),
	// counting, per server, the published services that satisfied the
	// profile. The number of checked services per server is the
	// server's Deployed count — every published service is evaluated
	// against every registered profile.
	Profiles []*ProfileCompliance

	// Dedup reports the structural-shape memo layer's statistics for
	// this run: Enabled=false (all other fields zero) when
	// Config.NoDedup was set. It is bookkeeping, not campaign outcome —
	// the equivalence tests exclude it when comparing Results.
	Dedup *DedupStats

	// Metrics is the observability snapshot taken when Run returned:
	// per-stage latency histograms, stage counters, memo hit/miss, and
	// live gauges (DESIGN.md §8). Counter values are deterministic
	// across worker counts; with a frozen clock injected through
	// Config.Obs the histograms are too. Like Dedup it is bookkeeping —
	// equivalence tests exclude it. The snapshot is cumulative for the
	// Runner, so repeated Run calls on one runner include earlier work.
	Metrics *obs.Snapshot
}

// Config parameterizes a campaign run.
//
// Prefer constructing runners through New with functional options
// (options.go) — that is the stable public surface, and new knobs land
// there first. Populating Config directly and calling NewRunner keeps
// working for existing callers, but field-by-field struct poking is a
// compatibility path, not the recommended one.
type Config struct {
	// Servers and Clients select the frameworks under test; nil means
	// the full sets of the study.
	Servers []framework.ServerFramework
	Clients []framework.ClientFramework
	// CatalogFor overrides catalog selection per language; nil uses
	// the full study catalogs.
	CatalogFor func(lang typesys.Language) *typesys.Catalog
	// Limit caps the number of classes per catalog (0 = all); used by
	// examples and benchmarks for scaled-down runs.
	Limit int
	// Workers bounds the worker pool; 0 uses GOMAXPROCS.
	Workers int
	// KeepFailures retains per-test detail for every errored test in
	// Result.Failures (the Table III footnote data).
	KeepFailures bool
	// Reparse forces the byte-level client path: every client re-parses
	// the serialized WSDL per test, exactly as the real tools do (the
	// DESIGN.md §6.3 ablation). When false — the default — each
	// published document is parsed and analyzed once and the immutable
	// analysis is shared across all clients, which produces an
	// identical Result (see TestReparseEquivalence) at a fraction of
	// the cost.
	Reparse bool
	// NoDedup disables the structural-shape memo layer (DESIGN.md
	// §6.6): every class then publishes, marshals, WS-I checks, and
	// client-tests individually, exactly as the real study would. When
	// false — the default — the runner content-addresses classes by
	// shape fingerprint and performs that work once per (server, shape),
	// rehydrating per-class output by name substitution. The Result is
	// identical either way (see TestDedupEquivalenceFull); Result.Dedup
	// reports the layer's statistics.
	NoDedup bool
	// NoPlan disables shape-first planned execution (plan.go, DESIGN.md
	// §12): the runner then discovers shapes lazily per class through the
	// mutex-guarded memo table, exactly as before the planner existed —
	// the planning ablation. When false — the default — the runner builds
	// an immutable execution plan up front (one catalog pass grouping
	// classes by shape per server) and the execution phase is lock-free:
	// workers own whole shape groups and clone fan-out is a columnar
	// broadcast of the representative's outcome codes. The Result is
	// identical either way (TestPlanEquivalenceFull). NoPlan is
	// deliberately outside the checkpoint fingerprint: either mode may
	// resume the other's journal.
	NoPlan bool
	// PlanCache, when non-empty, persists built execution plans to this
	// directory, content-addressed by the campaign configuration
	// fingerprint. Later runs with the same configuration — repeated
	// benchmarks, every POST /campaigns of a -serve daemon, resumed
	// -checkpoint runs — load the plan instead of re-walking the catalog
	// and re-fingerprinting 22 024 shapes. A cache file that fails any
	// validation (fingerprint, digest, version, catalog binding) is
	// ignored and rebuilt, never trusted. Ignored when CatalogFor is set:
	// the fingerprint cannot distinguish custom catalogs.
	PlanCache string
	// Variant selects the service interface complexity (the paper's
	// future-work extension); zero means services.VariantSimple.
	Variant services.Variant
	// Style selects the SOAP binding style the default servers emit
	// (document/literal when empty); ignored when Servers is set.
	Style wsdl.Style
	// Progress, when non-nil, receives live progress notifications as
	// services complete testing: the current stage (server name) and
	// services fully resolved so far — every client test finished, or
	// rejected at the description step — out of the stage's created
	// total. Calls are serialized (never concurrent) and done is
	// strictly increasing within a stage. Delivery is asynchronous:
	// consecutive completions may coalesce into one callback under load
	// (a slow callback never stalls the workers), and the final callback
	// of a completed stage always reports done == total.
	Progress func(stage string, done, total int)
	// Checker overrides the compliance checker; nil uses the default
	// (extended assertions enabled).
	Checker *wsi.Checker
	// Obs, when non-nil, is the metrics registry the runner instruments
	// into; nil creates a private registry on the real clock. Inject a
	// registry built with obs.NewRegistryWithClock and a frozen clock to
	// make latency histograms deterministic (the determinism tests do).
	Obs *obs.Registry
	// Checkpoint, when non-empty, makes the run durable: every completed
	// cell — a service's description step plus all of its client tests —
	// is appended to a JSONL journal in this directory as it completes,
	// with periodic atomic snapshot compaction (internal/journal,
	// DESIGN.md §9). An interrupted run — context cancellation, or
	// SIGINT/SIGTERM through cmd/interop — drains its in-flight workers,
	// flushes the journal, and leaves resumable state. A directory that
	// already holds checkpoint state is refused unless Resume is set.
	Checkpoint string
	// Resume replays the cells journaled under Checkpoint instead of
	// re-executing them. The resumed Result — including dedup statistics
	// and metrics counters — is identical to an uninterrupted run's
	// (TestResumeEquivalenceFull proves this at full scale). The journal
	// must have been written by the same campaign configuration: roster,
	// limit, variant, style, and ablation knobs are fingerprinted and a
	// mismatch is refused. Worker count is deliberately not part of the
	// fingerprint. Resume without Checkpoint is an error.
	Resume bool
	// Shard restricts the run to one deterministic slice of every
	// catalog — definition indexes congruent to Shard.Index modulo
	// Shard.Count, applied after Limit — for distributed execution
	// (distributed.go, DESIGN.md §11). The zero value runs the whole
	// campaign. Shard workers journal under Checkpoint; Merge folds the
	// shard journals back into one Result.
	Shard ShardSpec

	// checkpointProbe, when non-nil, observes every durable journal
	// append — test instrumentation for kill-point injection.
	checkpointProbe func(appended int)
}

// Runner executes campaigns.
type Runner struct {
	cfg     Config
	servers []framework.ServerFramework
	clients []framework.ClientFramework
	checker *wsi.Checker
	// profiles is the registered compliance-profile roster (wsi
	// registry order); every published document is evaluated against
	// each for the per-profile compliance matrix. Verdicts travel as a
	// bitmask over this roster.
	profiles []*wsi.Profile
	// sameFramework maps client name → server name of the same
	// framework, for the same-framework failure statistic.
	sameFramework map[string]string
	// dedup is the structural-shape memo table (dedup.go); entries
	// persist for the runner's lifetime, so repeated Publish/Run calls
	// reuse shapes already built.
	dedup *dedupState
	// obs is the metrics registry (Config.Obs or a private one); met
	// caches its instruments for the hot paths.
	obs *obs.Registry
	met *runnerMetrics
	// ckpt is the open journal of the current Run when Config.Checkpoint
	// is set (checkpoint.go); nil otherwise.
	ckpt *checkpointState
	// plan is the immutable execution plan, built or cache-loaded once
	// per runner (plan.go); nil until ensurePlan, and never set when
	// Config.NoPlan is on.
	planOnce sync.Once
	plan     *campaignPlan
	planErr  error
	// sharedPlan is a plan adopted from another runner with the same
	// configuration (AdoptPlan); ensurePlan uses it instead of building.
	sharedPlan *campaignPlan
}

// NewRunner builds a runner from the configuration.
func NewRunner(cfg Config) *Runner {
	r := &Runner{
		cfg: cfg, servers: cfg.Servers, clients: cfg.Clients, checker: cfg.Checker,
		dedup:    &dedupState{entries: make(map[shapeKey]*shapeEntry)},
		profiles: wsi.Profiles(),
	}
	r.obs = cfg.Obs
	if r.obs == nil {
		r.obs = obs.NewRegistry()
	}
	r.met = newRunnerMetrics(r.obs)
	if r.servers == nil {
		var opts []framework.ServerOption
		if cfg.Style != "" {
			opts = append(opts, framework.WithBindingStyle(cfg.Style))
		}
		r.servers = framework.ServersWithOptions(opts...)
	}
	if r.clients == nil {
		r.clients = framework.Clients()
	}
	if r.checker == nil {
		r.checker = wsi.NewChecker()
	}
	r.sameFramework = map[string]string{
		"Metro":             "Metro",
		"JBossWS CXF":       "JBossWS CXF",
		".NET C#":           "WCF .NET",
		".NET Visual Basic": "WCF .NET",
		".NET JScript":      "WCF .NET",
	}
	return r
}

// catalog selects the class catalog for a language.
func (r *Runner) catalog(lang typesys.Language) *typesys.Catalog {
	if r.cfg.CatalogFor != nil {
		return r.cfg.CatalogFor(lang)
	}
	switch lang {
	case typesys.Java:
		return typesys.JavaCatalog()
	case typesys.CSharp:
		return typesys.CSharpCatalog()
	default:
		return nil
	}
}

// Publish runs the service description generation step for one server
// framework over its catalog, returning the published services and
// the created-service count.
func (r *Runner) Publish(ctx context.Context, server framework.ServerFramework) ([]PublishedService, int, error) {
	defs, err := r.defsFor(server)
	if err != nil {
		return nil, 0, err
	}

	slots := make([]publishSlot, len(defs))

	workers := r.workers()
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				slots[i] = r.publishOne(ctx, server, defs[i], true)
			}
		}()
	}
feed:
	for i := range defs {
		select {
		case <-ctx.Done():
			break feed
		case ch <- i:
		}
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	published := make([]PublishedService, 0, len(defs))
	for i := range slots {
		if slots[i].err != nil {
			return nil, 0, slots[i].err
		}
		if slots[i].ok {
			published = append(published, slots[i].svc)
		}
	}
	return published, len(defs), nil
}

// publishSlot is the outcome of the description step for one service
// definition: rejected (ok=false), published, or errored. mode and
// verified record the route taken, for the cell journal.
type publishSlot struct {
	ok       bool
	svc      PublishedService
	err      error
	mode     recordMode
	verified bool
}

// checkDoc runs the WS-I compliance check under the stage timer,
// returning the primary checker's report plus the per-profile verdict
// mask over the registered roster. The primary checker's own profile
// reuses its report instead of evaluating twice.
func (r *Runner) checkDoc(doc *wsdl.Definitions) (*wsi.Report, uint64) {
	start := r.met.now()
	report := r.checker.Check(doc)
	primary := r.checker.Profile()
	var mask uint64
	for i, p := range r.profiles {
		compliant := false
		if p == primary {
			compliant = report.Compliant()
		} else {
			compliant = p.Evaluate(doc).Compliant()
		}
		if compliant {
			mask |= 1 << uint(i)
		}
	}
	r.met.observe(r.met.wsiSeconds, start)
	r.met.wsiChecks.Inc()
	if len(report.Violations) > 0 {
		r.met.wsiFlagged.Inc()
	}
	return report, mask
}

// profileIDs expands a verdict mask into the compliant profiles' IDs
// in roster order; nil when none.
func (r *Runner) profileIDs(mask uint64) []string {
	if mask == 0 {
		return nil
	}
	var ids []string
	for i, p := range r.profiles {
		if mask&(1<<uint(i)) != 0 {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// profileMask rebuilds a verdict mask from journaled profile IDs.
// Unknown IDs cannot occur — the checkpoint fingerprint covers the
// roster — but are dropped defensively rather than misattributed.
func (r *Runner) profileMask(ids []string) uint64 {
	var mask uint64
	for _, id := range ids {
		for i, p := range r.profiles {
			if p.ID == id {
				mask |= 1 << uint(i)
				break
			}
		}
	}
	return mask
}

// publishDirect runs the description step for one definition without
// the shape memo — the per-class path every memoized outcome is
// verified against.
func (r *Runner) publishDirect(server framework.ServerFramework, def services.Definition) (s publishSlot) {
	start := r.met.now()
	doc, err := server.Publish(def)
	if err != nil {
		// Not deployable: excluded from further testing (the paper's
		// optimistic assumption at the description step).
		r.met.observe(r.met.publishSeconds, start)
		r.met.publishRejected.Inc()
		return s
	}
	raw, err := wsdl.Marshal(doc)
	r.met.observe(r.met.publishSeconds, start)
	if err != nil {
		s.err = fmt.Errorf("marshal WSDL for %s on %s: %w", def.Parameter.Name, server.Name(), err)
		return s
	}
	report, profiles := r.checkDoc(doc)
	s.ok = true
	s.svc = PublishedService{
		Server:    server.Name(),
		Class:     def.Parameter.Name,
		Doc:       raw,
		Flagged:   len(report.Violations) > 0,
		Compliant: report.Compliant(),
		Profiles:  profiles,
		analysis:  &sharedAnalysis{},
	}
	return s
}

func (r *Runner) workers() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunTest executes steps 2–3 for one published service against one
// client framework, sharing the service's memoized document analysis
// when the runner attached one (Config.Reparse selects the byte-level
// path instead).
func RunTest(client framework.ClientFramework, svc PublishedService) TestResult {
	return RunTestContext(context.Background(), client, svc)
}

// RunTestContext is RunTest with a caller-supplied context, for parity
// with the context-first transport APIs. The generation and
// compilation steps are in-process and run to completion — a started
// test is never torn mid-step, which is what makes a drained service a
// journalable (resumable) unit.
func RunTestContext(ctx context.Context, client framework.ClientFramework, svc PublishedService) TestResult {
	return runTest(ctx, client, &svc, false, nil)
}

func runTest(_ context.Context, client framework.ClientFramework, svc *PublishedService, reparse bool, m *runnerMetrics) TestResult {
	t := TestResult{Server: svc.Server, Client: client.Name(), Class: svc.Class}
	start := m.now()
	gen := generationFor(client, svc, reparse)
	t.Gen.mergeIssues(gen.Issues)
	// The generation stage's end stamp doubles as the compile stage's
	// start: one clock read fewer on a path taken ~52k times per run.
	start = m.recordGen(start, t.Gen.Error)
	if gen.Unit == nil {
		return t
	}
	t.CompileRan = true
	t.Compile.mergeDiagnostics(client.Verify(gen.Unit))
	// The unit is dead once its diagnostics are folded in; hand the
	// arena storage back to the generator pool.
	framework.ReleaseUnit(gen.Unit)
	m.recordCompile(start, t.Compile.Error)
	return t
}

// generationFor runs the artifact generation step through the shared
// analysis when available. A document the shared parse rejects falls
// back to the byte path, so each client reports the parse failure in
// its own voice — identical to Reparse mode.
func generationFor(client framework.ClientFramework, svc *PublishedService, reparse bool) framework.GenerationResult {
	if !reparse {
		if a, err := svc.Analysis(); err == nil {
			return client.GenerateAnalyzed(a)
		}
	}
	return client.Generate(svc.Doc)
}

// Run executes the full campaign. Each server stage is a streaming
// pipeline: publish workers feed published services directly into the
// test worker pool — description generation overlaps artifact
// generation and compilation — and every test worker folds classified
// outcomes into a private Result shard as services complete. A
// deterministic per-server merge then re-establishes the aggregate, so
// the Result is identical to a sequential run regardless of worker
// count or scheduling.
//
// With Config.Checkpoint set the run is durable: completed cells are
// journaled as they finish, cancellation drains in-flight work and
// flushes the journal before returning ctx.Err(), and a later run with
// Config.Resume replays the journal into an identical Result
// (checkpoint.go, DESIGN.md §9).
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	// The plan is resolved before the checkpoint opens so the journal
	// meta can record its provenance.
	if _, err := r.ensurePlan(); err != nil {
		return nil, err
	}
	if err := r.openCheckpoint(); err != nil {
		return nil, err
	}
	res, err := r.runCampaign(ctx)
	if cerr := r.closeCheckpoint(); err == nil {
		err = cerr
	}
	if err == nil {
		// The journal's durable-point probes fire from the writer
		// goroutine, which execution can outrun by the channel buffer; a
		// cancellation they trigger during the final flush must still win,
		// or an interrupted-at-N run could report clean completion.
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runCampaign is Run's body, bracketed by the checkpoint lifecycle.
func (r *Runner) runCampaign(ctx context.Context) (*Result, error) {
	res := newResult(r)
	before := r.dedup.snapshot()
	wsiBefore := r.met.wsiChecks.Value()
	memoBefore := r.met.wsiMemoized.Value()
	for _, server := range r.servers {
		if err := r.runServer(ctx, server, res); err != nil {
			return nil, err
		}
	}
	if r.dedupOn() {
		res.Dedup = r.dedup.statsSince(before)
		res.Dedup.WSIChecks = int(r.met.wsiChecks.Value() - wsiBefore)
		res.Dedup.WSIMemoized = int(r.met.wsiMemoized.Value() - memoBefore)
	} else {
		// The nodedup ablation reports the zero value, matching the
		// "memoization disabled" rendering.
		res.Dedup = &DedupStats{}
	}
	res.Metrics = r.obs.Snapshot()
	return res, nil
}

// Metrics snapshots the runner's observability registry, covering
// every campaign mode executed on it so far (Run, RunCommunication,
// RunRobustness). Result.Metrics is the same snapshot taken when Run
// returned.
func (r *Runner) Metrics() *obs.Snapshot { return r.obs.Snapshot() }

// Obs exposes the runner's metrics registry (Config.Obs, or the
// private one NewRunner created) — the -debug endpoint serves it live
// while a campaign runs.
func (r *Runner) Obs() *obs.Registry { return r.obs }

func newResult(r *Runner) *Result {
	res := &Result{
		Servers: make(map[string]*ServerSummary, len(r.servers)),
		Clients: make(map[string]*ClientSummary, len(r.clients)),
		Matrix:  make(map[string]map[string]*Cell, len(r.clients)),
	}
	for _, s := range r.servers {
		res.Servers[s.Name()] = &ServerSummary{}
		res.ServerOrder = append(res.ServerOrder, s.Name())
	}
	for _, c := range r.clients {
		row := make(map[string]*Cell, len(r.servers))
		for _, s := range r.servers {
			row[s.Name()] = &Cell{}
		}
		res.Matrix[c.Name()] = row
		res.Clients[c.Name()] = &ClientSummary{}
		res.ClientOrder = append(res.ClientOrder, c.Name())
	}
	for _, p := range r.profiles {
		res.Profiles = append(res.Profiles, &ProfileCompliance{
			ID:        p.ID,
			Name:      p.Name,
			Compliant: make(map[string]int, len(r.servers)),
		})
	}
	return res
}

// svcState tracks one published service through the streaming test
// stage: a result slot per client plus the count of outstanding
// client tests. Each worker writes only its own slot; the worker
// completing the last test observes the counter hit zero (which
// orders it after every slot write) and folds the whole service into
// its shard, so per-service classification happens exactly once with
// all client results visible.
type svcState struct {
	svc PublishedService
	// codes is the columnar outcome row: one packed outcomeCode per
	// client slot (columnar.go), including the executed bit the cell
	// journal persists so resume reconstructs memo state and counters
	// exactly. Written under the same last-test ordering the remaining
	// counter establishes.
	codes []outcomeCode
	// mode and verified record the service's publish route for the
	// journal (checkpoint.go).
	mode      recordMode
	verified  bool
	remaining atomic.Int32
}

// testJob is one (published service × client) test in the stream.
type testJob struct {
	st     *svcState
	svcIdx int
	cli    int
}

// shard is one test worker's private partial Result for the current
// server stage: the Fig. 4 / Table III counters folded locally, with
// no cross-worker synchronization. Shards replace the serial
// classification loop; the per-server tree merge restores the totals.
type shard struct {
	server  ServerSummary
	clients []ClientSummary
	cells   []Cell
	// deployed and descriptionWarnings count the stage's folded
	// (published) services. They live in the shard so the merge is a
	// pure columnar sum — no retained per-service state to scan.
	deployed                 int
	descriptionWarnings      int
	interopErrors            int
	sameFrameworkErrors      int
	flaggedCleanServices     int
	unflaggedFailingServices int
	// profileCompliant counts the stage's folded services compliant
	// with each registered profile, indexed in roster order.
	profileCompliant []int
}

// newShard allocates one worker's private stage shard.
func newShard(clients, profiles int) *shard {
	return &shard{
		clients:          make([]ClientSummary, clients),
		cells:            make([]Cell, clients),
		profileCompliant: make([]int, profiles),
	}
}

// add folds another shard of the same stage into s. Every field is an
// integer sum, so folding is associative and commutative — the
// property the tree merge relies on.
func (s *shard) add(o *shard) {
	s.server.Tests += o.server.Tests
	s.server.GenWarnings += o.server.GenWarnings
	s.server.GenErrors += o.server.GenErrors
	s.server.CompileWarnings += o.server.CompileWarnings
	s.server.CompileErrors += o.server.CompileErrors
	for ci := range s.clients {
		s.clients[ci].add(&o.clients[ci])
		s.cells[ci].add(&o.cells[ci])
	}
	s.deployed += o.deployed
	s.descriptionWarnings += o.descriptionWarnings
	s.interopErrors += o.interopErrors
	s.sameFrameworkErrors += o.sameFrameworkErrors
	s.flaggedCleanServices += o.flaggedCleanServices
	s.unflaggedFailingServices += o.unflaggedFailingServices
	for pi := range s.profileCompliant {
		s.profileCompliant[pi] += o.profileCompliant[pi]
	}
}

// mergeShards folds a stage's shards pairwise in parallel rounds — a
// tree merge. Shard addition is order-independent, so the result is
// identical to the old serial fold regardless of pairing.
func mergeShards(shards []*shard) *shard {
	for len(shards) > 1 {
		half := (len(shards) + 1) / 2
		var wg sync.WaitGroup
		for i := 0; i+half < len(shards); i++ {
			wg.Add(1)
			go func(dst, src *shard) {
				defer wg.Done()
				dst.add(src)
			}(shards[i], shards[i+half])
		}
		wg.Wait()
		shards = shards[:half]
	}
	if len(shards) == 0 {
		return nil
	}
	return shards[0]
}

// progress delivers Config.Progress callbacks for one server stage
// from a dedicated notifier goroutine, so a slow callback — a terminal
// write, the daemon's NDJSON encoder — never stalls the workers
// reporting completions: serviceDone is one atomic add plus a
// non-blocking doorbell. The notifier serializes callbacks with
// strictly increasing done counts, may coalesce consecutive
// completions into one callback under load, and close guarantees the
// latest count (done == total for a completed stage) is delivered
// before the stage returns. A nil progress (no callback configured) is
// a no-op.
type progress struct {
	fn    func(stage string, done, total int)
	stage string
	total int
	done  atomic.Int64
	kick  chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup
}

// newProgress starts the stage's notifier; returns nil (a no-op
// progress) when no callback is configured.
func newProgress(fn func(stage string, done, total int), stage string, total int) *progress {
	if fn == nil {
		return nil
	}
	p := &progress{
		fn: fn, stage: stage, total: total,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.notify()
	return p
}

func (p *progress) notify() {
	defer p.wg.Done()
	var last int64
	report := func() {
		if n := p.done.Load(); n > last {
			last = n
			p.fn(p.stage, int(n), p.total)
		}
	}
	for {
		select {
		case <-p.kick:
			report()
		case <-p.quit:
			report()
			return
		}
	}
}

// serviceDone reports one more service resolved: fully tested, or
// rejected at the description step.
func (p *progress) serviceDone() { p.add(1) }

// add reports n more services resolved at once — the planned
// executor's clone broadcast resolves a whole group in one step.
func (p *progress) add(n int) {
	if p == nil || n == 0 {
		return
	}
	p.done.Add(int64(n))
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// close ends the stage, delivering the final count first.
func (p *progress) close() {
	if p == nil {
		return
	}
	close(p.quit)
	p.wg.Wait()
}

// defsFor generates the (possibly limited) service definition list
// for one server framework's catalog.
func (r *Runner) defsFor(server framework.ServerFramework) ([]services.Definition, error) {
	cat := r.catalog(server.Language())
	if cat == nil {
		return nil, fmt.Errorf("campaign: no catalog for language %s", server.Language())
	}
	variant := r.cfg.Variant
	if variant == 0 {
		variant = services.VariantSimple
	}
	defs := services.GenerateVariant(cat, variant)
	if r.cfg.Limit > 0 && len(defs) > r.cfg.Limit {
		defs = defs[:r.cfg.Limit]
	}
	if sh := r.cfg.Shard; sh.enabled() {
		if err := sh.validate(); err != nil {
			return nil, err
		}
		// Interleaved assignment: index i belongs to shard i mod Count.
		// Sharding after Limit keeps every shard's cell set a pure
		// function of (catalog, Limit, Index, Count), independent of how
		// many other shards exist or run.
		slice := make([]services.Definition, 0, (len(defs)+sh.Count-1)/sh.Count)
		for i := sh.Index; i < len(defs); i += sh.Count {
			slice = append(slice, defs[i])
		}
		defs = slice
	}
	return defs, nil
}

// runServer executes one server's full stage and merges the outcome
// into res: shape-first planned execution by default (plan.go), the
// lazy streaming pipeline under the Config.NoPlan ablation.
func (r *Runner) runServer(ctx context.Context, server framework.ServerFramework, res *Result) error {
	sp, err := r.planFor(server)
	if err != nil {
		return err
	}
	if sp != nil {
		return r.runServerPlanned(ctx, server, res, sp)
	}
	defs, err := r.defsFor(server)
	if err != nil {
		return fmt.Errorf("publish on %s: %w", server.Name(), err)
	}
	return r.runServerLazy(ctx, server, res, defs)
}

// runServerLazy executes one server's stage as the class-first
// streaming pipeline: publish workers feed published services into the
// test pool and shapes are discovered lazily through the memo table.
// Retained as the planning ablation (Config.NoPlan); the planned path
// must stay byte-identical to it.
func (r *Runner) runServerLazy(ctx context.Context, server framework.ServerFramework, res *Result, defs []services.Definition) error {
	workers := r.workers()
	pubErrs := make([]error, len(defs))
	var failures [][]TestResult
	if r.cfg.KeepFailures {
		failures = make([][]TestResult, len(defs))
	}
	prog := newProgress(r.cfg.Progress, server.Name(), len(defs))
	defer prog.close()

	// Resume: re-seed the shape memo table from the journal, then
	// replay every journaled cell into a dedicated shard before the
	// streaming pool starts. The executed remainder then takes exactly
	// the paths the interrupted run would have taken.
	replay := r.replayPlan(server, defs)
	var replayShard *shard
	if replay != nil {
		if err := r.seedMemoFromJournal(server, defs, replay); err != nil {
			return err
		}
		var err error
		replayShard, err = r.replayStage(server, replay, failures, prog)
		if err != nil {
			return err
		}
	}

	shards := make([]*shard, workers)
	pubCh := make(chan int)
	testCh := make(chan testJob, workers*len(r.clients))
	r.met.workers.Set(int64(workers))
	stageStart := r.met.now()

	var pubWG, testWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := newShard(len(r.clients), len(r.profiles))
		shards[w] = sh
		testWG.Add(1)
		go func() {
			defer testWG.Done()
			// Cancellation drains rather than abandons: testCh is read to
			// exhaustion so every service whose tests were enqueued
			// completes, folds, and is journaled — the resumable boundary.
			for j := range testCh {
				r.met.queueDepth.Add(-1)
				j.st.codes[j.cli] = r.testFor(ctx, &j.st.svc, j.cli)
				if j.st.remaining.Add(-1) == 0 {
					fails := r.foldService(j.st, sh)
					if failures != nil {
						failures[j.svcIdx] = fails
					}
					r.journalService(j.st)
					prog.serviceDone()
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := range pubCh {
				slot := r.publishOne(ctx, server, defs[i], false)
				switch {
				case slot.err != nil:
					pubErrs[i] = slot.err
					prog.serviceDone()
				case !slot.ok:
					// Not deployable: resolved with no client tests.
					r.journalRejected(server, defs[i], slot)
					prog.serviceDone()
				default:
					st := &svcState{
						svc:      slot.svc,
						mode:     slot.mode,
						verified: slot.verified,
						codes:    make([]outcomeCode, len(r.clients)),
					}
					st.remaining.Store(int32(len(r.clients)))
					// Feed the tests straight into the streaming pool;
					// test workers drain testCh until it closes, so this
					// send cannot deadlock.
					for ci := range r.clients {
						r.met.queueDepth.Add(1)
						testCh <- testJob{st: st, svcIdx: i, cli: ci}
					}
				}
			}
		}()
	}

feed:
	for i := range defs {
		if _, replayed := replay[i]; replayed {
			continue
		}
		select {
		case <-ctx.Done():
			break feed
		case pubCh <- i:
		}
	}
	close(pubCh)
	pubWG.Wait()
	close(testCh)
	testWG.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, perr := range pubErrs {
		if perr != nil {
			return fmt.Errorf("publish on %s: %w", server.Name(), perr)
		}
	}
	if replayShard != nil {
		shards = append(shards, replayShard)
	}
	r.mergeServer(res, server.Name(), len(defs), shards, failures)
	r.obs.Emit(obs.Event{
		Trace:        obs.TraceID(server.Name()),
		Stage:        "server-stage",
		Server:       server.Name(),
		Detail:       fmt.Sprintf("%d services", len(defs)),
		ElapsedNanos: int64(r.met.since(stageStart)),
	})
	return nil
}

// foldService classifies one fully tested service into a shard — the
// per-service body of the classification fold, applied by whichever
// worker completed the service's last test. It returns the service's
// errored tests in client roster order for the Failures index (nil
// unless Config.KeepFailures).
func (r *Runner) foldService(st *svcState, sh *shard) []TestResult {
	errored := r.foldCodes(sh, st.svc.Server, st.svc.Flagged, st.svc.Profiles, st.codes, 1)
	if !errored || !r.cfg.KeepFailures {
		return nil
	}
	return r.failsFor(st.svc.Server, st.svc.Class, st.codes)
}

// foldCodes folds one columnar outcome row into a shard n times — the
// classification fold's core. n > 1 is the planned executor's clone
// broadcast: every safe clone of a verified shape carries exactly the
// representative's codes and flagged status, so the whole fan-out is
// one multiplied fold instead of a per-class pass. Returns whether any
// cell of the row errored.
func (r *Runner) foldCodes(sh *shard, server string, flagged bool, profiles uint64, codes []outcomeCode, n int) bool {
	sh.deployed += n
	if flagged {
		sh.descriptionWarnings += n
	}
	for pi := range sh.profileCompliant {
		if profiles&(1<<uint(pi)) != 0 {
			sh.profileCompliant[pi] += n
			r.met.profileCompliant[pi].Add(int64(n))
		}
	}
	cleanEverywhere := true
	for ci := range codes {
		code := codes[ci]
		cell := &sh.cells[ci]
		sum := &sh.server
		cli := &sh.clients[ci]

		cell.Tests += n
		sum.Tests += n
		cli.Tests += n
		if code&codeGenWarning != 0 {
			cell.GenWarnings += n
			sum.GenWarnings += n
			cli.GenWarnings += n
		}
		if code&codeGenError != 0 {
			cell.GenErrors += n
			sum.GenErrors += n
			cli.GenErrors += n
			sh.interopErrors += n
		}
		if code&codeCompileRan != 0 {
			if code&codeCompileWarning != 0 {
				cell.CompileWarnings += n
				sum.CompileWarnings += n
				cli.CompileWarnings += n
			}
			if code&codeCompileError != 0 {
				cell.CompileErrors += n
				sum.CompileErrors += n
				cli.CompileErrors += n
				sh.interopErrors += n
			}
		}
		if code.errorAnywhere() {
			cleanEverywhere = false
			if flagged {
				cli.ErrorsOnFlagged += n
			} else {
				cli.ErrorsOnClean += n
			}
			if r.sameFramework[r.clients[ci].Name()] == server {
				sh.sameFrameworkErrors += n
			}
		}
	}
	if flagged && cleanEverywhere {
		sh.flaggedCleanServices += n
	}
	if !flagged && !cleanEverywhere {
		sh.unflaggedFailingServices += n
	}
	return !cleanEverywhere
}

// failsFor materializes the errored cells of one outcome row for the
// Failures index, in client roster order.
func (r *Runner) failsFor(server, class string, codes []outcomeCode) []TestResult {
	var fails []TestResult
	for ci, code := range codes {
		if code.errorAnywhere() {
			fails = append(fails, code.testResult(server, r.clients[ci].Name(), class))
		}
	}
	return fails
}

// add accumulates another partial cell.
func (c *Cell) add(o *Cell) {
	c.Tests += o.Tests
	c.GenWarnings += o.GenWarnings
	c.GenErrors += o.GenErrors
	c.CompileWarnings += o.CompileWarnings
	c.CompileErrors += o.CompileErrors
}

// add accumulates another partial client summary.
func (c *ClientSummary) add(o *ClientSummary) {
	c.Tests += o.Tests
	c.GenWarnings += o.GenWarnings
	c.GenErrors += o.GenErrors
	c.CompileWarnings += o.CompileWarnings
	c.CompileErrors += o.CompileErrors
	c.ErrorsOnFlagged += o.ErrorsOnFlagged
	c.ErrorsOnClean += o.ErrorsOnClean
}

// mergeServer tree-merges one stage's shards and folds the total into
// the aggregate. Counter sums are order-independent and failures are
// concatenated by service definition index, so the merged Result is
// identical to the old serial fold's.
func (r *Runner) mergeServer(res *Result, serverName string, created int,
	shards []*shard, failures [][]TestResult) {
	sum := res.Servers[serverName]
	sum.Created = created
	res.TotalServices += created
	sh := mergeShards(shards)
	if sh == nil {
		sh = newShard(len(r.clients), len(r.profiles))
	}
	sum.Deployed += sh.deployed
	res.TotalPublished += sh.deployed
	sum.DescriptionWarnings += sh.descriptionWarnings
	res.FlaggedServices += sh.descriptionWarnings
	for pi, pc := range res.Profiles {
		pc.Compliant[serverName] += sh.profileCompliant[pi]
		pc.TotalCompliant += sh.profileCompliant[pi]
	}
	for ci, c := range r.clients {
		res.Matrix[c.Name()][serverName].add(&sh.cells[ci])
		res.Clients[c.Name()].add(&sh.clients[ci])
	}
	sum.Tests += sh.server.Tests
	sum.GenWarnings += sh.server.GenWarnings
	sum.GenErrors += sh.server.GenErrors
	sum.CompileWarnings += sh.server.CompileWarnings
	sum.CompileErrors += sh.server.CompileErrors
	res.TotalTests += sh.server.Tests
	res.InteropErrors += sh.interopErrors
	res.SameFrameworkErrors += sh.sameFrameworkErrors
	res.FlaggedCleanServices += sh.flaggedCleanServices
	res.UnflaggedFailingServices += sh.unflaggedFailingServices
	for _, fails := range failures {
		res.Failures = append(res.Failures, fails...)
	}
}
