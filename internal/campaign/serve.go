package campaign

// The campaign service daemon (DESIGN.md §11.3): the long-running form
// of the one-shot CLI, mirroring how the ecosystem studies in
// PAPERS.md describe compliance auditing in production — a service you
// POST work to, not a batch job. The daemon multiplexes concurrent
// campaigns (each on its own metrics registry), streams progress as
// NDJSON while a campaign runs, and serves published WSDLs over real
// TCP through transport.Host instead of the in-process LocalBridge —
// the same HTTP surface, one hardened http.Server.
//
// API (all JSON):
//
//	POST /campaigns            body CampaignSpec → NDJSON stream:
//	                           {"type":"accepted","id":...}, then
//	                           {"type":"progress",...} lines, then
//	                           {"type":"result",...} or {"type":"error",...}
//	GET  /campaigns            list every campaign's status
//	GET  /campaigns/{id}       one campaign's status
//	GET  /campaigns/{id}/report  full Result + metrics snapshot
//	POST /services             {"server":...,"class":...} → publish that
//	                           class's WSDL on that framework over TCP
//	GET  /services/{path}?wsdl   the published description
//	POST /services/{path}        live SOAP endpoint (transport.Host)
//	GET  /healthz              liveness
//
// The /debug mux (metrics, events, pprof) is composed by cmd/interop
// on top of this handler, sharing the daemon's registry.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/transport"
)

// CampaignSpec is the daemon's wire form of a campaign request — the
// subset of Config that is meaningful per-request (checkpointing and
// sharding stay CLI concerns; a daemon campaign is in-memory).
type CampaignSpec struct {
	// Limit caps services per catalog (0 = the full study).
	Limit int `json:"limit,omitempty"`
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Server and Client restrict the rosters by substring match, the
	// CLI's -server/-client semantics.
	Server string `json:"server,omitempty"`
	Client string `json:"client,omitempty"`
	// Reparse, NoDedup, and NoPlan select the ablation paths.
	Reparse bool `json:"reparse,omitempty"`
	NoDedup bool `json:"noDedup,omitempty"`
	NoPlan  bool `json:"noPlan,omitempty"`
	// KeepFailures retains the per-test failure index in the report.
	KeepFailures bool `json:"keepFailures,omitempty"`
}

// options resolves the spec into runner options.
func (s *CampaignSpec) options() ([]Option, error) {
	if s.Limit < 0 || s.Workers < 0 {
		return nil, fmt.Errorf("campaign: negative limit or workers")
	}
	opts := []Option{WithLimit(s.Limit), WithWorkers(s.Workers)}
	if s.Reparse {
		opts = append(opts, WithReparse())
	}
	if s.NoDedup {
		opts = append(opts, WithoutDedup())
	}
	if s.NoPlan {
		opts = append(opts, WithoutPlan())
	}
	if s.KeepFailures {
		opts = append(opts, WithKeepFailures())
	}
	if s.Server != "" {
		servers := matchServers(s.Server)
		if len(servers) == 0 {
			return nil, fmt.Errorf("campaign: no server framework matches %q", s.Server)
		}
		opts = append(opts, WithServers(servers...))
	}
	if s.Client != "" {
		var clients []framework.ClientFramework
		for _, c := range framework.Clients() {
			if strings.Contains(strings.ToLower(c.Name()), strings.ToLower(s.Client)) {
				clients = append(clients, c)
			}
		}
		if len(clients) == 0 {
			return nil, fmt.Errorf("campaign: no client framework matches %q", s.Client)
		}
		opts = append(opts, WithClients(clients...))
	}
	return opts, nil
}

// matchServers selects study servers by case-insensitive substring.
func matchServers(name string) []framework.ServerFramework {
	var servers []framework.ServerFramework
	for _, s := range framework.Servers() {
		if strings.Contains(strings.ToLower(s.Name()), strings.ToLower(name)) {
			servers = append(servers, s)
		}
	}
	return servers
}

// campaignJob is one multiplexed campaign: its own runner, its own
// metrics registry (so concurrent campaigns never interleave
// counters), and a mutex-guarded status snapshot for the list/status
// endpoints while the NDJSON stream is live.
type campaignJob struct {
	id   string
	spec CampaignSpec
	reg  *obs.Registry

	mu     sync.Mutex
	state  string // "running" | "done" | "failed"
	stage  string // current server stage
	done   int    // services resolved in the current stage
	total  int    // services in the current stage
	errMsg string
	result *Result
}

// JobStatus is the wire form of one campaign's state.
type JobStatus struct {
	ID    string       `json:"id"`
	Spec  CampaignSpec `json:"spec"`
	State string       `json:"state"`
	Stage string       `json:"stage,omitempty"`
	Done  int          `json:"done"`
	Total int          `json:"total"`
	Error string       `json:"error,omitempty"`
}

func (job *campaignJob) status() JobStatus {
	job.mu.Lock()
	defer job.mu.Unlock()
	return JobStatus{
		ID: job.id, Spec: job.spec, State: job.state,
		Stage: job.stage, Done: job.done, Total: job.total, Error: job.errMsg,
	}
}

// Daemon is the long-running campaign service. Construct with
// NewDaemon, mount Handler (or let Start bind its own hardened
// listener), and Shutdown to stop: running campaigns are cancelled
// cooperatively and in-flight responses drain.
type Daemon struct {
	reg  *obs.Registry
	base []Option
	host *transport.Host

	ctx    context.Context // cancelled at Shutdown; parents every campaign
	cancel context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*campaignJob
	order []string
	seq   int

	// plans shares resolved execution plans across campaigns: the first
	// campaign with a given configuration fingerprint builds the plan,
	// every later one adopts it (AdoptPlan) and skips the catalog walk.
	planMu sync.Mutex
	plans  map[string]*Plan

	srv      *net.Listener
	server   *http.Server
	done     chan struct{}
	serveErr error
}

// NewDaemon builds a campaign daemon. reg is the daemon-level registry
// (request counters; cmd/interop mounts /debug on it); nil creates a
// private one. baseOpts apply to every campaign before its spec's own
// options — the CLI uses this to thread ablation defaults through.
func NewDaemon(reg *obs.Registry, baseOpts ...Option) *Daemon {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Daemon{
		reg:    reg,
		base:   baseOpts,
		host:   transport.NewHost(),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*campaignJob),
		plans:  make(map[string]*Plan),
	}
}

// Handler returns the daemon's HTTP surface. The /debug endpoints are
// deliberately not included: callers compose them (cmd/interop mounts
// debugMux over the same registry) so the daemon embeds cleanly under
// other muxes too.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/campaigns", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			d.startCampaign(w, r)
		case http.MethodGet:
			d.listCampaigns(w)
		default:
			http.Error(w, "POST a campaign spec, or GET the campaign list", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/campaigns/", d.campaignStatus)
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `POST {"server":...,"class":...} to publish a service`, http.StatusMethodNotAllowed)
			return
		}
		d.publishService(w, r)
	})
	mux.Handle("/services/", http.StripPrefix("/services", d.host))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start binds addr and serves handler (nil means Handler()) on a
// hardened http.Server — same ReadHeaderTimeout discipline as
// transport.Host.Start — returning the base URL.
func (d *Daemon) Start(addr string, handler http.Handler) (string, error) {
	if handler == nil {
		handler = d.Handler()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("campaign: daemon listen: %w", err)
	}
	d.srv = &ln
	d.done = make(chan struct{})
	d.server = &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		defer close(d.done)
		if err := d.server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.serveErr = err
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// Shutdown stops the daemon: running campaigns are cancelled (they
// drain cooperatively and their streams end with an error line), then
// the server shuts down gracefully within ctx — in-flight responses
// finish — falling back to a hard close if ctx expires first.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.cancel()
	if d.server == nil {
		return nil
	}
	err := d.server.Shutdown(ctx)
	if err != nil {
		_ = d.server.Close()
	}
	<-d.done
	if err != nil {
		return err
	}
	return d.serveErr
}

// register allocates a job ID and tracks the job.
func (d *Daemon) register(spec CampaignSpec) *campaignJob {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	job := &campaignJob{
		id:    fmt.Sprintf("c%04d", d.seq),
		spec:  spec,
		reg:   obs.NewRegistry(),
		state: "running",
	}
	d.jobs[job.id] = job
	d.order = append(d.order, job.id)
	return job
}

// streamLine writes one NDJSON event and flushes it to the client.
func streamLine(w http.ResponseWriter, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// progressEvery throttles streamed progress lines: one every this many
// resolved services, plus every stage boundary.
const progressEvery = 64

// startCampaign runs one campaign, streaming progress as NDJSON until
// the final result (or error) line. The campaign is cancelled if the
// client disconnects or the daemon shuts down.
func (d *Daemon) startCampaign(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad campaign spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	opts, err := spec.options()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job := d.register(spec)
	d.reg.Counter("daemon.campaigns.started").Inc()
	d.reg.Emit(obs.Event{
		Trace: obs.TraceID("daemon", job.id), Stage: "campaign-accepted",
		Detail: job.id,
	})

	// The campaign dies with the request (client gone) or the daemon.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(d.ctx, cancel)
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = streamLine(w, map[string]any{"type": "accepted", "id": job.id, "spec": &spec})

	// Progress callbacks arrive serialized from runner workers while
	// this handler goroutine blocks in Run, so writes never interleave.
	progress := func(stage string, done, total int) {
		job.mu.Lock()
		job.stage, job.done, job.total = stage, done, total
		job.mu.Unlock()
		if done%progressEvery == 0 || done == total {
			_ = streamLine(w, map[string]any{
				"type": "progress", "id": job.id,
				"stage": stage, "done": done, "total": total,
			})
		}
	}
	runner := New(append(append([]Option{}, d.base...),
		append(opts, WithObs(job.reg), WithProgress(progress))...)...)
	fp := runner.PlanFingerprint()
	if fp != "" {
		d.planMu.Lock()
		p := d.plans[fp]
		d.planMu.Unlock()
		if p != nil {
			// Same configuration as an earlier campaign: reuse its plan.
			_ = runner.AdoptPlan(p)
		}
	}
	res, err := runner.Run(ctx)
	if err == nil && fp != "" {
		if p, perr := runner.ExecutionPlan(); perr == nil {
			d.planMu.Lock()
			d.plans[fp] = p
			d.planMu.Unlock()
		}
	}

	job.mu.Lock()
	if err != nil {
		job.state, job.errMsg = "failed", err.Error()
	} else {
		job.state, job.result = "done", res
	}
	job.mu.Unlock()

	if err != nil {
		d.reg.Counter("daemon.campaigns.failed").Inc()
		d.reg.Emit(obs.Event{Trace: obs.TraceID("daemon", job.id), Stage: "campaign-failed", Detail: err.Error()})
		_ = streamLine(w, map[string]any{"type": "error", "id": job.id, "error": err.Error()})
		return
	}
	d.reg.Counter("daemon.campaigns.completed").Inc()
	d.reg.Emit(obs.Event{Trace: obs.TraceID("daemon", job.id), Stage: "campaign-done", Detail: job.id})
	_ = streamLine(w, map[string]any{
		"type": "result", "id": job.id,
		"summary": map[string]int{
			"totalServices":  res.TotalServices,
			"totalPublished": res.TotalPublished,
			"totalTests":     res.TotalTests,
			"interopErrors":  res.InteropErrors,
		},
		"report": "/campaigns/" + job.id + "/report",
	})
}

// listCampaigns reports every job's status, oldest first.
func (d *Daemon) listCampaigns(w http.ResponseWriter) {
	d.mu.Lock()
	statuses := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		statuses = append(statuses, d.jobs[id].status())
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statuses)
}

// campaignStatus serves GET /campaigns/{id} and /campaigns/{id}/report.
func (d *Daemon) campaignStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "campaign resources are read-only", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	d.mu.Lock()
	job := d.jobs[id]
	d.mu.Unlock()
	if job == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	switch sub {
	case "":
		_ = json.NewEncoder(w).Encode(job.status())
	case "report":
		job.mu.Lock()
		res := job.result
		job.mu.Unlock()
		if res == nil {
			http.Error(w, "campaign has no result (state "+job.status().State+")", http.StatusConflict)
			return
		}
		// The report is the library Result plus the job's own metrics
		// snapshot — what report.JSON composes, without importing
		// internal/report (which imports this package).
		_ = json.NewEncoder(w).Encode(map[string]any{
			"id": job.id, "spec": &job.spec,
			"result":  res,
			"metrics": job.reg.Snapshot(),
		})
	default:
		http.NotFound(w, r)
	}
}

// publishRequest is the POST /services body.
type publishRequest struct {
	Server string `json:"server"`
	Class  string `json:"class"`
}

// publishService publishes one class's service description on one
// server framework and deploys it on the daemon's transport.Host, so
// its WSDL — and its live SOAP endpoint — are served over real TCP.
func (d *Daemon) publishService(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad publish request: "+err.Error(), http.StatusBadRequest)
		return
	}
	servers := matchServers(req.Server)
	if len(servers) != 1 {
		http.Error(w, fmt.Sprintf("server %q matches %d frameworks, need exactly 1", req.Server, len(servers)), http.StatusBadRequest)
		return
	}
	server := servers[0]
	cat := New(d.base...).catalog(server.Language())
	if cat == nil {
		http.Error(w, fmt.Sprintf("no catalog for %v", server.Language()), http.StatusBadRequest)
		return
	}
	cls, ok := cat.Lookup(req.Class)
	if !ok {
		http.Error(w, fmt.Sprintf("class %q is not in the %s catalog", req.Class, server.Language()), http.StatusNotFound)
		return
	}
	doc, err := server.Publish(services.ForClass(cls))
	if err != nil {
		http.Error(w, fmt.Sprintf("%s rejects %s: %v", server.Name(), req.Class, err), http.StatusUnprocessableEntity)
		return
	}
	ep, err := transport.FromWSDL(doc)
	if err != nil {
		http.Error(w, "endpoint derivation: "+err.Error(), http.StatusInternalServerError)
		return
	}
	already := false
	if err := d.host.Deploy(ep); err != nil {
		if !errors.Is(err, transport.ErrPathCollision) {
			http.Error(w, "deploy: "+err.Error(), http.StatusInternalServerError)
			return
		}
		// Same class → same path → same document: publishing is
		// idempotent, the earlier endpoint keeps serving.
		already = true
	}
	d.reg.Counter("daemon.services.published").Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"server": server.Name(), "class": req.Class,
		"path":            "/services" + ep.Path,
		"wsdl":            "/services" + ep.Path + "?wsdl",
		"namespace":       ep.Namespace,
		"alreadyDeployed": already,
	})
}
