package campaign

import (
	"context"
	"reflect"
	"testing"
)

// These tests enforce the analysis-cache contract: a campaign that
// shares one memoized document analysis across all clients must
// produce a Result identical — every headline statistic, the full
// Table III matrix, and the failure index — to one where every client
// re-parses the serialized WSDL per test (Config.Reparse, the
// behaviour of the real tools and the DESIGN.md §6.3 ablation).

// runEquivalencePair executes the same campaign twice, cached and
// reparsed (with different worker counts, so scheduling differences
// are covered too), and fails on any divergence.
func runEquivalencePair(t *testing.T, cached, reparse Config) {
	t.Helper()
	reparse.Reparse = true
	a, err := NewRunner(cached).Run(context.Background())
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	b, err := NewRunner(reparse).Run(context.Background())
	if err != nil {
		t.Fatalf("reparse run: %v", err)
	}
	compareResults(t, a, b)
}

// compareResults asserts two campaign results are identical,
// reporting the first divergence precisely rather than dumping both.
func compareResults(t *testing.T, a, b *Result) {
	t.Helper()
	type scalar struct {
		name string
		a, b int
	}
	for _, s := range []scalar{
		{"TotalServices", a.TotalServices, b.TotalServices},
		{"TotalPublished", a.TotalPublished, b.TotalPublished},
		{"TotalTests", a.TotalTests, b.TotalTests},
		{"SameFrameworkErrors", a.SameFrameworkErrors, b.SameFrameworkErrors},
		{"InteropErrors", a.InteropErrors, b.InteropErrors},
		{"FlaggedServices", a.FlaggedServices, b.FlaggedServices},
		{"FlaggedCleanServices", a.FlaggedCleanServices, b.FlaggedCleanServices},
		{"UnflaggedFailingServices", a.UnflaggedFailingServices, b.UnflaggedFailingServices},
	} {
		if s.a != s.b {
			t.Errorf("%s: cached %d != reparse %d", s.name, s.a, s.b)
		}
	}
	if !reflect.DeepEqual(a.ServerOrder, b.ServerOrder) || !reflect.DeepEqual(a.ClientOrder, b.ClientOrder) {
		t.Fatalf("roster orders differ: %v/%v vs %v/%v", a.ServerOrder, a.ClientOrder, b.ServerOrder, b.ClientOrder)
	}
	for _, server := range a.ServerOrder {
		if !reflect.DeepEqual(a.Servers[server], b.Servers[server]) {
			t.Errorf("server %s: %+v != %+v", server, a.Servers[server], b.Servers[server])
		}
	}
	for _, client := range a.ClientOrder {
		if !reflect.DeepEqual(a.Clients[client], b.Clients[client]) {
			t.Errorf("client %s: %+v != %+v", client, a.Clients[client], b.Clients[client])
		}
		for _, server := range a.ServerOrder {
			if *a.Matrix[client][server] != *b.Matrix[client][server] {
				t.Errorf("cell %s × %s: %+v != %+v", client, server,
					*a.Matrix[client][server], *b.Matrix[client][server])
			}
		}
	}
	if len(a.Profiles) != len(b.Profiles) {
		t.Fatalf("profile roster length: cached %d != reparse %d", len(a.Profiles), len(b.Profiles))
	}
	for i := range a.Profiles {
		if !reflect.DeepEqual(a.Profiles[i], b.Profiles[i]) {
			t.Errorf("profile %s matrix: %+v != %+v", a.Profiles[i].ID, *a.Profiles[i], *b.Profiles[i])
		}
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("failure index length: cached %d != reparse %d", len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("failure %d: %+v != %+v", i, a.Failures[i], b.Failures[i])
		}
	}
}

func TestReparseEquivalenceScaled(t *testing.T) {
	runEquivalencePair(t,
		Config{Limit: 200, Workers: 4, KeepFailures: true},
		Config{Limit: 200, Workers: 2, KeepFailures: true})
}

func TestReparseEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence skipped in -short mode")
	}
	cached := Config{KeepFailures: true}
	reparse := Config{KeepFailures: true, Reparse: true}
	a, err := NewRunner(cached).Run(context.Background())
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	b, err := NewRunner(reparse).Run(context.Background())
	if err != nil {
		t.Fatalf("reparse run: %v", err)
	}
	compareResults(t, a, b)

	// The paper's full-scale invariants must hold on both paths.
	for _, res := range []*Result{a, b} {
		if res.TotalServices != 22024 {
			t.Errorf("services created = %d, want 22024", res.TotalServices)
		}
		if res.TotalPublished != 7239 {
			t.Errorf("published = %d, want 7239", res.TotalPublished)
		}
		if res.TotalTests != 79629 {
			t.Errorf("tests = %d, want 79629", res.TotalTests)
		}
		if res.InteropErrors != 1588 {
			t.Errorf("interop errors = %d, want 1588", res.InteropErrors)
		}
		if res.SameFrameworkErrors != 307 {
			t.Errorf("same-framework errors = %d, want 307", res.SameFrameworkErrors)
		}
	}
}
