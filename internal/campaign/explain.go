package campaign

import (
	"fmt"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// Explanation is the full drill-down for one (server, class) pair:
// everything the study would tell a developer asking "why does my
// service not work from framework X?". It is the library form of the
// paper's §IV.B technical narratives.
type Explanation struct {
	Server string
	Class  string
	// Deployed reports whether the server published a WSDL;
	// DeployError carries the refusal otherwise.
	Deployed    bool
	DeployError string
	// Document is the serialized WSDL (nil when not deployed).
	Document []byte
	// Compliance carries the WS-I findings.
	Compliance []wsi.Violation
	// Clients holds one entry per client framework, in roster order.
	Clients []ClientExplanation
}

// ClientExplanation is one client framework's view of the service.
type ClientExplanation struct {
	Client string
	Tool   string
	// GenerationIssues is the tool's reported output during artifact
	// generation.
	GenerationIssues []framework.Issue
	// ArtifactsProduced reports whether any artifacts exist (silent
	// failures produce artifacts alongside error issues).
	ArtifactsProduced bool
	// Diagnostics is the compiler/instantiation output.
	Diagnostics []artifact.Diagnostic
}

// Failed reports whether any step errored for this client.
func (c *ClientExplanation) Failed() bool {
	for _, i := range c.GenerationIssues {
		if i.Severity >= artifact.SeverityError {
			return true
		}
	}
	return len(artifact.Errors(c.Diagnostics)) > 0
}

// Explain runs the three steps for one class on one server and
// returns the full narrative. The server is matched by name against
// the runner's configured servers.
func (r *Runner) Explain(serverName, className string) (*Explanation, error) {
	var server framework.ServerFramework
	for _, s := range r.servers {
		if s.Name() == serverName {
			server = s
			break
		}
	}
	if server == nil {
		return nil, fmt.Errorf("campaign: no server framework named %q", serverName)
	}
	cat := r.catalog(server.Language())
	if cat == nil {
		return nil, fmt.Errorf("campaign: no catalog for %s", server.Language())
	}
	cls, ok := cat.Lookup(className)
	if !ok {
		return nil, fmt.Errorf("campaign: class %q is not in the %s catalog", className, server.Language())
	}
	return explain(server, r.clients, r.checker, cls)
}

func explain(server framework.ServerFramework, clients []framework.ClientFramework,
	checker *wsi.Checker, cls *typesys.Class) (*Explanation, error) {
	e := &Explanation{Server: server.Name(), Class: cls.Name}

	doc, err := server.Publish(services.ForClass(cls))
	if err != nil {
		e.DeployError = err.Error()
		return e, nil
	}
	e.Deployed = true
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("marshal WSDL: %w", err)
	}
	e.Document = raw
	e.Compliance = checker.Check(doc).Violations

	for _, client := range clients {
		ce := ClientExplanation{Client: client.Name(), Tool: client.Tool()}
		gen := client.Generate(raw)
		ce.GenerationIssues = gen.Issues
		if gen.Unit != nil {
			ce.ArtifactsProduced = true
			ce.Diagnostics = client.Verify(gen.Unit)
		}
		e.Clients = append(e.Clients, ce)
	}
	return e, nil
}
