package campaign

import (
	"strings"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/shape"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsi"
)

// These tests prove the shape-level WS-I soundness claim of DESIGN.md
// §10: for every class the memo layer would serve (shape.Memoizable
// and wsi.SubstitutionSafe both hold), the per-class checker's
// violated-assertion sequence is identical to its shape
// representative's — so reusing the representative's verdict per
// shape can never change a campaign Result.

// wsiVerdictKey runs the per-class checker and flattens the violated
// assertion IDs (name-derived details stripped) into a comparable key.
// Publish rejections get a distinct key: rejection is decided before
// any WS-I check, and must also be constant per shape.
func wsiVerdictKey(checker *wsi.Checker, server framework.ServerFramework, def services.Definition) string {
	doc, err := server.Publish(def)
	if err != nil {
		return "rejected"
	}
	rep := checker.Check(doc)
	ids := make([]string, len(rep.Violations))
	for i, v := range rep.Violations {
		ids[i] = v.Assertion.ID
	}
	return strings.Join(ids, ",")
}

func runWSIShapeEquivalence(t *testing.T, checker *wsi.Checker, limit int) {
	t.Helper()
	catalogs := map[typesys.Language]*typesys.Catalog{
		typesys.Java:   typesys.JavaCatalog(),
		typesys.CSharp: typesys.CSharpCatalog(),
	}
	classes, memoizable, shapes := 0, 0, 0
	for _, server := range framework.Servers() {
		defs := services.GenerateVariant(catalogs[server.Language()], services.VariantSimple)
		if limit > 0 && len(defs) > limit {
			defs = defs[:limit]
		}
		type repInfo struct {
			class   string
			verdict string
		}
		reps := make(map[shape.Fingerprint]repInfo)
		for _, def := range defs {
			classes++
			vars := shape.Vars(def)
			if !shape.Memoizable(def) ||
				!wsi.SubstitutionSafe(vars[shape.SlotService], vars[shape.SlotNamespace], vars[shape.SlotSimple]) {
				// Off the memo path: always checked per class, nothing
				// to prove.
				continue
			}
			memoizable++
			verdict := wsiVerdictKey(checker, server, def)
			fp := shape.Of(def)
			rep, seen := reps[fp]
			if !seen {
				shapes++
				reps[fp] = repInfo{class: def.Parameter.Name, verdict: verdict}
				continue
			}
			if verdict != rep.verdict {
				t.Errorf("%s: class %s verdict [%s] diverges from shape representative %s [%s]",
					server.Name(), def.Parameter.Name, verdict, rep.class, rep.verdict)
			}
		}
	}
	if memoizable == 0 || shapes == 0 {
		t.Fatalf("no memoizable classes exercised (classes=%d, shapes=%d)", classes, shapes)
	}
	if limit == 0 && classes != 22024 {
		t.Errorf("corpus size = %d classes, want 22024", classes)
	}
	t.Logf("classes=%d memoizable=%d shapes=%d", classes, memoizable, shapes)
}

func TestWSIShapeEquivalenceScaled(t *testing.T) {
	for _, p := range wsi.Profiles() {
		t.Run(p.ID, func(t *testing.T) {
			runWSIShapeEquivalence(t, wsi.NewChecker(wsi.WithProfile(p)), 300)
		})
	}
}

// TestWSIShapeEquivalenceFull replays every class of the study corpus
// (22 024 service definitions across the seven servers) through the
// per-class checker and requires each class's verdict to match its
// shape representative's — once per registered compliance profile,
// proving the (shape, profile) memo key sound for the whole roster.
func TestWSIShapeEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence skipped in -short mode")
	}
	for _, p := range wsi.Profiles() {
		t.Run(p.ID, func(t *testing.T) {
			runWSIShapeEquivalence(t, wsi.NewChecker(wsi.WithProfile(p)), 0)
		})
	}
}
