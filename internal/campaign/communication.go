package campaign

import (
	"context"
	"fmt"
	"sync"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
	"wsinterop/internal/wsdl"
)

// This file implements the campaign extension for the Communication
// and Execution steps (4 and 5 of the paper's Fig. 1), which the paper
// scopes out and announces as future work.
//
// For every (published service × client) combination the extension:
//
//  1. re-runs artifact generation and verification (steps 2–3);
//  2. classifies combinations whose static steps failed as *blocked*;
//  3. deploys the service on an in-process SOAP host and invokes the
//     proxy's operation through the full HTTP handler path;
//  4. verifies the Execution step by checking the echo semantics.
//
// Two outcomes make the extension informative beyond "everything
// clean works":
//
//   - silent generation failures surface here: tools that emitted a
//     method-less stub without reporting an error (Axis1/CXF/JBossWS
//     on zero-operation WSDLs) cannot invoke anything — the defect
//     the static steps let through is finally observable;
//   - everything that genuinely passed steps 1–3 completes the round
//     trip, quantifying how predictive the three static steps are.

// CommOutcome classifies one combination in the communication step.
type CommOutcome int

// Communication outcomes.
const (
	// CommBlocked: an earlier step errored, no invocation possible.
	CommBlocked CommOutcome = iota + 1
	// CommNoOperations: artifacts exist but expose nothing to invoke
	// (the silent-failure stubs).
	CommNoOperations
	// CommFault: the invocation produced a SOAP fault or transport
	// error.
	CommFault
	// CommEchoMismatch: the call succeeded but the Execution step
	// returned wrong data.
	CommEchoMismatch
	// CommOK: full round trip with correct echo semantics.
	CommOK
)

// String implements fmt.Stringer.
func (o CommOutcome) String() string {
	switch o {
	case CommBlocked:
		return "blocked"
	case CommNoOperations:
		return "no-operations"
	case CommFault:
		return "fault"
	case CommEchoMismatch:
		return "echo-mismatch"
	case CommOK:
		return "ok"
	default:
		return fmt.Sprintf("CommOutcome(%d)", int(o))
	}
}

// CommSummary aggregates the communication extension for one server.
type CommSummary struct {
	Server       string
	Combinations int
	Blocked      int
	NoOperations int
	Faults       int
	Mismatches   int
	Succeeded    int
	// Exchanges and MessageViolations come from the wire-level sniffer
	// (transport.Sniffer): captured request/response pairs and WS-I
	// message-assertion findings among them.
	Exchanges         int
	MessageViolations int
	// PathCollisions counts deployed services whose derived HTTP path
	// collided with an earlier endpoint and needed a deterministic
	// numeric suffix to stay reachable.
	PathCollisions int
}

// Add folds one outcome into the summary.
func (s *CommSummary) Add(o CommOutcome) {
	s.Combinations++
	switch o {
	case CommBlocked:
		s.Blocked++
	case CommNoOperations:
		s.NoOperations++
	case CommFault:
		s.Faults++
	case CommEchoMismatch:
		s.Mismatches++
	case CommOK:
		s.Succeeded++
	}
}

// CommResult is the outcome of the communication extension across
// servers.
type CommResult struct {
	Servers     map[string]*CommSummary
	ServerOrder []string
	// Clients breaks the outcomes down per client framework across
	// all servers, attributing the blocked and silent-failure
	// combinations to the tools that caused them.
	Clients     map[string]*CommSummary
	ClientOrder []string
}

// Totals sums all server summaries.
func (r *CommResult) Totals() CommSummary {
	var t CommSummary
	t.Server = "total"
	for _, name := range r.ServerOrder {
		s := r.Servers[name]
		t.Combinations += s.Combinations
		t.Blocked += s.Blocked
		t.NoOperations += s.NoOperations
		t.Faults += s.Faults
		t.Mismatches += s.Mismatches
		t.Succeeded += s.Succeeded
		t.Exchanges += s.Exchanges
		t.MessageViolations += s.MessageViolations
		t.PathCollisions += s.PathCollisions
	}
	return t
}

// RunCommunication executes the communication extension for every
// configured server framework.
func (r *Runner) RunCommunication(ctx context.Context) (*CommResult, error) {
	res := &CommResult{
		Servers: make(map[string]*CommSummary, len(r.servers)),
		Clients: make(map[string]*CommSummary, len(r.clients)),
	}
	for _, c := range r.clients {
		res.Clients[c.Name()] = &CommSummary{Server: c.Name()}
		res.ClientOrder = append(res.ClientOrder, c.Name())
	}
	for _, server := range r.servers {
		sum, err := r.runCommunicationServer(ctx, server, res.Clients)
		if err != nil {
			return nil, fmt.Errorf("communication on %s: %w", server.Name(), err)
		}
		res.Servers[server.Name()] = sum
		res.ServerOrder = append(res.ServerOrder, server.Name())
	}
	return res, nil
}

func (r *Runner) runCommunicationServer(ctx context.Context, server framework.ServerFramework,
	perClient map[string]*CommSummary) (*CommSummary, error) {
	published, _, err := r.Publish(ctx, server)
	if err != nil {
		return nil, err
	}

	host := transport.NewHost()
	// Every exchange flows through the message-level conformance
	// sniffer — the wire-side complement of the step-1 WS-I check.
	sniffer := transport.NewSniffer(host, r.checker).WithObs(r.obs)
	bridge := transport.NewLocalBridge(sniffer).WithObs(r.obs)

	endpoints, collisions, err := r.deployPublished(host, published)
	if err != nil {
		return nil, err
	}

	sum := &CommSummary{Server: server.Name(), PathCollisions: collisions}
	outcomes := make([]CommOutcome, len(published)*len(r.clients))

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				si, ci := idx/len(r.clients), idx%len(r.clients)
				svc, cli := &published[si], r.clients[ci]
				// The cell's trace joins sniffer captures (and any fault
				// logs) back to this (server, class, client) combination:
				// the bridge stamps it on the wire as X-Wsinterop-Trace.
				trace := obs.TraceID(server.Name(), svc.Class, cli.Name())
				start := r.met.now()
				outcomes[idx] = communicate(obs.WithTrace(ctx, trace), bridge, cli, svc,
					endpoints[svc.Class], r.cfg.Reparse)
				r.met.observe(r.met.commSeconds, start)
				r.met.commCells.Inc()
				r.obs.Emit(obs.Event{
					Trace:        trace,
					Stage:        "communication",
					Server:       server.Name(),
					Client:       cli.Name(),
					Class:        svc.Class,
					Detail:       outcomes[idx].String(),
					ElapsedNanos: int64(r.met.since(start)),
				})
			}
		}()
	}
feed:
	for idx := 0; idx < len(outcomes); idx++ {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- idx:
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for idx, o := range outcomes {
		sum.Add(o)
		if perClient != nil {
			perClient[r.clients[idx%len(r.clients)].Name()].Add(o)
		}
	}
	sum.Exchanges = sniffer.Exchanges()
	sum.MessageViolations = len(sniffer.Findings())
	return sum, nil
}

// deployPublished deploys every invocable service once, reusing the
// shared document analysis for the endpoint derivation (Config.Reparse
// restores the per-deploy wsdl.Unmarshal the pre-cache runner did).
// Zero-operation documents are rejected by the runtime exactly as
// FromWSDL defines. A path collision between two services is resolved
// with a deterministic numeric suffix and counted, so the summary can
// surface it instead of silently dropping an endpoint.
func (r *Runner) deployPublished(host *transport.Host,
	published []PublishedService) (map[string]*transport.Endpoint, int, error) {
	endpoints := make(map[string]*transport.Endpoint, len(published)) // class → endpoint
	collisions := 0
	for i := range published {
		var doc *wsdl.Definitions
		if r.cfg.Reparse {
			d, err := wsdl.Unmarshal(published[i].Doc)
			if err != nil {
				return nil, 0, fmt.Errorf("reparse %s: %w", published[i].Class, err)
			}
			doc = d
		} else {
			a, err := published[i].Analysis()
			if err != nil {
				return nil, 0, fmt.Errorf("analyze %s: %w", published[i].Class, err)
			}
			doc = a.Definitions()
		}
		ep, err := transport.FromWSDL(doc)
		if err != nil {
			continue // zero-operation services stay undeployed
		}
		if err := host.Deploy(ep); err != nil {
			collisions++
			base := ep.Path
			for n := 2; ; n++ {
				ep.Path = fmt.Sprintf("%s-%d", base, n)
				if host.Deploy(ep) == nil {
					break
				}
			}
		}
		endpoints[published[i].Class] = ep
	}
	return endpoints, collisions, nil
}

// buildEchoRequest builds the invocation payload for one operation
// from the endpoint's field specifications (lexically valid samples
// for scalar fields, a probe string for the parameter bean) so the
// Execution step's payload validation is genuinely exercised. It
// returns the request and the field whose echo proves the round trip.
func buildEchoRequest(ep *transport.Endpoint, op, class string) (*soap.Message, string) {
	probe := "probe:" + class
	fields := make(map[string]string, 2)
	probeField := ""
	for _, spec := range ep.Inputs[op] {
		fields[spec.Name] = transport.SampleValue(spec, probe)
		if probeField == "" && fields[spec.Name] == probe {
			probeField = spec.Name
		}
	}
	if len(fields) == 0 {
		fields["input"] = probe
		probeField = "input"
	}
	if probeField == "" {
		probeField = ep.Inputs[op][0].Name
	}
	return &soap.Message{Namespace: ep.Namespace, Local: op, Fields: fields}, probeField
}

// invocable runs steps 2–3 for one combination through the shared
// analysis (Config.Reparse selects the byte path, matching the static
// campaign) and returns the operation to invoke. ok is false for
// blocked combinations; an empty op marks the silent no-operation
// stubs.
func invocable(client framework.ClientFramework, svc *PublishedService,
	ep *transport.Endpoint, reparse bool) (op string, ok bool) {
	gen := generationFor(client, svc, reparse)
	if gen.Failed() || gen.Unit == nil {
		return "", false
	}
	if diags := client.Verify(gen.Unit); len(artifact.Errors(diags)) > 0 {
		return "", false
	}
	port := gen.Unit.PortClass()
	if port == nil || len(port.Methods) == 0 || ep == nil {
		return "", true
	}
	return port.Methods[0].Name, true
}

// communicate executes steps 2–5 for one combination and classifies
// the result.
func communicate(ctx context.Context, bridge *transport.LocalBridge,
	client framework.ClientFramework, svc *PublishedService,
	ep *transport.Endpoint, reparse bool) CommOutcome {
	op, ok := invocable(client, svc, ep, reparse)
	if !ok {
		return CommBlocked
	}
	if op == "" {
		// Artifacts with nothing to invoke: the silent failures.
		return CommNoOperations
	}

	req, probeField := buildEchoRequest(ep, op, svc.Class)
	resp, err := bridge.Invoke(ctx, ep.Path, req)
	if err != nil {
		return CommFault
	}
	if echoed, _ := resp.Field(probeField); echoed != req.Fields[probeField] {
		return CommEchoMismatch
	}
	if resp.Local != op+"Response" {
		return CommEchoMismatch
	}
	return CommOK
}
