package campaign

// Versions mode (`interop -versions`): the hybrid-version interop
// matrix. Every (published service × client) pair is exchanged once
// per version scenario — pure SOAP 1.1, pure SOAP 1.2, and two
// deliberately hybrid wires — against a host that declares its
// framework's version strictness, and the outcome is classified as
// accept, typed-reject, or silent-mishandle. The mode measures the
// paper's version-mismatch failure class end to end: a strict
// framework must refuse a mixed-version message with a typed error,
// and no swallowed mismatch (a hybrid wire or a relayed fault
// reported as success) may ever land in the accept bucket.
//
// Determinism follows the robustness-mode contract: cells land in
// pre-indexed slots, the fold runs serially in fixed (server,
// service, client, scenario) order, and all wire mutation is steered
// by per-request directive headers — so worker count and scheduling
// never change a cell. The matrix additionally journals (one record
// per service cell, under <checkpoint>/versions), resumes, and merges
// across shard leases; every per-cell quantity folds commutatively,
// which is what makes replay order-free.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"wsinterop/internal/framework"
	"wsinterop/internal/journal"
	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
)

// HeaderVersionScenario is the request header steering the version
// wire: the scenario name selects which hybrid mutation (if any) the
// wire applies to the exchange. Like the fault injector's directive
// header, it keeps all wire state per-request, so one wire instance
// serves any number of concurrent cells deterministically.
const HeaderVersionScenario = "X-Version-Scenario"

// Scenario names. The catalog order is fixed and covered by the
// checkpoint fingerprint.
const (
	scenarioV11           = "v11"
	scenarioV12           = "v12"
	scenarioHybridHeaders = "hybrid-headers"
	scenarioHybridFault   = "hybrid-fault"
)

// VersionScenario is one column group of the version matrix: the
// envelope codec the client speaks plus the wire mutation applied to
// the exchange.
type VersionScenario struct {
	// Name labels the scenario and is the wire directive value.
	Name string
	// Codec is the envelope version the client marshals and expects.
	Codec soap.Codec
	// HybridRequest rewrites the request's Content-Type to the SOAP
	// 1.2 media type while the body stays a 1.1 envelope — the
	// mixed-framing request the paper's version-mismatch findings
	// describe.
	HybridRequest bool
	// HybridFault replaces a successful response body with a SOAP 1.2
	// fault while keeping the 1.1 Content-Type and the 200 status — a
	// relayed fault in the wrong version vocabulary. A client that
	// reports success against this wire swallowed a failure.
	HybridFault bool
}

// VersionScenarios returns the scenario catalog in its fixed order:
// both pure versions, then the two hybrid wires.
func VersionScenarios() []VersionScenario {
	return []VersionScenario{
		{Name: scenarioV11, Codec: soap.V11},
		{Name: scenarioV12, Codec: soap.V12},
		{Name: scenarioHybridHeaders, Codec: soap.V11, HybridRequest: true},
		{Name: scenarioHybridFault, Codec: soap.V11, HybridFault: true},
	}
}

// VersionOutcome classifies one (service × client × scenario) cell.
type VersionOutcome int

// Version-matrix outcomes.
const (
	// VersionSkipped: the static steps blocked the combination or the
	// artifacts expose nothing to invoke; no exchange happened.
	VersionSkipped VersionOutcome = iota + 1
	// VersionAccepted: the round trip completed with intact echo
	// semantics over a wire that never mixed versions.
	VersionAccepted
	// VersionTypedReject: the client surfaced a typed error — a
	// *transport.VersionMismatchError, a relayed fault, or any other
	// refusal the caller can dispatch on.
	VersionTypedReject
	// VersionMishandled: the client reported success although the
	// exchange was wrong — a swallowed relayed fault, a corrupted or
	// misshapen echo, or a response wire that mixed versions.
	VersionMishandled
)

// String implements fmt.Stringer; the rendered form is also the
// journal encoding of an outcome.
func (o VersionOutcome) String() string {
	switch o {
	case VersionSkipped:
		return "skipped"
	case VersionAccepted:
		return "accept"
	case VersionTypedReject:
		return "typed-reject"
	case VersionMishandled:
		return "silent-mishandle"
	default:
		return fmt.Sprintf("VersionOutcome(%d)", int(o))
	}
}

// parseVersionOutcome inverts String for journal replay.
func parseVersionOutcome(s string) (VersionOutcome, error) {
	for _, o := range []VersionOutcome{VersionSkipped, VersionAccepted, VersionTypedReject, VersionMishandled} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown version outcome %q", s)
}

// VersionCounts aggregates cells of one matrix slice. Every field is
// a commutative sum, so partial counts fold in any order — the
// property journal replay and the shard merge rely on.
type VersionCounts struct {
	Cells      int
	Skipped    int
	Accepted   int
	Rejected   int
	Mishandled int
}

// Add folds one outcome into the counts.
func (c *VersionCounts) Add(o VersionOutcome) {
	c.Cells++
	switch o {
	case VersionSkipped:
		c.Skipped++
	case VersionAccepted:
		c.Accepted++
	case VersionTypedReject:
		c.Rejected++
	case VersionMishandled:
		c.Mishandled++
	}
}

// add accumulates another partial count.
func (c *VersionCounts) add(o *VersionCounts) {
	c.Cells += o.Cells
	c.Skipped += o.Skipped
	c.Accepted += o.Accepted
	c.Rejected += o.Rejected
	c.Mishandled += o.Mishandled
}

// VersionResult is the (server × client × scenario) version matrix,
// aggregated along its two presentation axes.
type VersionResult struct {
	// Scenarios lists the catalog columns in their fixed order.
	Scenarios []string
	// Servers maps server name → scenario name → counts.
	Servers     map[string]map[string]*VersionCounts
	ServerOrder []string
	// Clients maps client name → counts across all servers and
	// scenarios.
	Clients     map[string]*VersionCounts
	ClientOrder []string
	// PathCollisions counts deployments that needed a suffixed path.
	PathCollisions int
}

// ScenarioTotals sums each scenario column across servers.
func (r *VersionResult) ScenarioTotals() map[string]*VersionCounts {
	totals := make(map[string]*VersionCounts, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		t := &VersionCounts{}
		for _, server := range r.ServerOrder {
			t.add(r.Servers[server][sc])
		}
		totals[sc] = t
	}
	return totals
}

// Totals sums the whole matrix.
func (r *VersionResult) Totals() VersionCounts {
	var t VersionCounts
	for _, server := range r.ServerOrder {
		for _, sc := range r.Scenarios {
			t.add(r.Servers[server][sc])
		}
	}
	return t
}

// wireCapture is the final on-the-wire response of one exchange, as
// the client saw it — recorded after every wire mutation, so the
// classification can ask what version(s) the bytes actually spoke.
type wireCapture struct {
	status      int
	contentType string
	body        []byte
}

// versionWire is the scenario-steered middleware between client and
// host: it applies the hybrid request/response mutations and taps the
// final response, keyed by the cell's trace header.
type versionWire struct {
	next http.Handler
	taps sync.Map // trace → *wireCapture
}

func newVersionWire(next http.Handler) *versionWire { return &versionWire{next: next} }

var _ http.Handler = (*versionWire)(nil)

// ServeHTTP implements http.Handler.
func (vw *versionWire) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	scenario := r.Header.Get(HeaderVersionScenario)
	if scenario == scenarioHybridHeaders {
		// The body stays the client's 1.1 envelope; only the framing
		// claims 1.2 — the host-side hybrid.
		r.Header.Set("Content-Type", soap.ContentType12)
	}
	rec := httptest.NewRecorder()
	vw.next.ServeHTTP(rec, r)
	status, ctype, body := rec.Code, rec.Header().Get("Content-Type"), rec.Body.Bytes()
	if scenario == scenarioHybridFault && status == http.StatusOK {
		// Replace the successful response with a 1.2 fault under the
		// unchanged 1.1 Content-Type and 200 status: the wire now
		// unambiguously signals failure, in the wrong vocabulary.
		if fb, err := soap.V12.MarshalFault(&soap.Fault{
			Code: soap.Fault12Receiver, String: "relayed upstream failure",
		}); err == nil {
			body = fb
		}
	}
	if trace := r.Header.Get(obs.TraceHeader); trace != "" {
		vw.taps.Store(trace, &wireCapture{status: status, contentType: ctype, body: body})
	}
	for k, v := range rec.Header() {
		w.Header()[k] = v
	}
	w.Header().Del("Content-Length")
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// take removes and returns the tapped response of one cell; nil when
// the exchange never produced a response (the cell was skipped).
func (vw *versionWire) take(trace string) *wireCapture {
	v, ok := vw.taps.LoadAndDelete(trace)
	if !ok {
		return nil
	}
	return v.(*wireCapture)
}

// versionRetryPolicy builds the per-cell client policy: a single
// attempt whose Annotate hook stamps the scenario directive onto the
// request — the same header-steered mechanism the fault injector
// uses, so the shared wire stays stateless per request.
func versionRetryPolicy(scenario string) *transport.RetryPolicy {
	return &transport.RetryPolicy{
		Annotate: func(_ int, h http.Header) { h.Set(HeaderVersionScenario, scenario) },
	}
}

// classifyVersion maps one exchange into the taxonomy. Order matters:
// a surfaced error is always a typed reject (the per-error-type
// breakdown is the transport's concern; the matrix only requires that
// the refusal was a typed Go error, which every transport error is);
// a success against the hybrid-fault wire swallowed a failure; a
// success with a corrupted or misshapen echo accepted wrong data; a
// success whose response wire mixed versions absorbed a hybrid
// without noticing. Only a clean echo over a coherent wire accepts.
func classifyVersion(sc VersionScenario, cap *wireCapture, resp *soap.Message, err error,
	wantLocal string, sent map[string]string, probeField string) VersionOutcome {
	if err != nil {
		return VersionTypedReject
	}
	if sc.HybridFault {
		return VersionMishandled
	}
	if resp.Local != wantLocal || len(resp.Fields) != len(sent) {
		return VersionMishandled
	}
	for name := range sent {
		if _, ok := resp.Fields[name]; !ok {
			return VersionMishandled
		}
	}
	if echoed, _ := resp.Field(probeField); echoed != sent[probeField] {
		return VersionMishandled
	}
	if cap != nil && soap.Detect(cap.body, cap.contentType) == soap.VersionHybrid {
		return VersionMishandled
	}
	return VersionAccepted
}

// versionsDirName is the subdirectory of Config.Checkpoint holding
// the version-matrix journal, beside (not inside) the static
// campaign's store — the two record sets have different shapes and
// complete independently.
const versionsDirName = "versions"

// Journal record modes of the versions store.
const (
	versionsMode         = "versions"
	versionsCompleteMode = "versions-complete"
)

// versionTrace is the journal key of one version-matrix service cell.
func versionTrace(server, class string) string {
	return obs.TraceID("versions", server, class)
}

// versionSentinelTrace is the journal key of one shard's completion
// sentinel for a server stage. It embeds the shard coordinates so
// sentinels from different shards never collide in a merge union.
func versionSentinelTrace(shard ShardSpec, server string) string {
	return obs.TraceID("versions-complete", shard.String(), server)
}

// versionCheckpoint is one RunVersions' open journal. Appends are
// mutex-serialized (the store is per-service, not per-cell, so
// contention is negligible) and flushed durably before returning.
type versionCheckpoint struct {
	mu     sync.Mutex
	j      *journal.Journal
	err    error
	loaded map[string]journal.Record

	resumed  *obs.Counter // journal.cells.resumed
	executed *obs.Counter // journal.cells.executed
}

// openVersionCheckpoint opens the versions journal configured by
// Config.Checkpoint (a no-op without one).
func (r *Runner) openVersionCheckpoint() (*versionCheckpoint, error) {
	shard, err := r.shardMeta()
	if err != nil {
		return nil, err
	}
	if r.cfg.Checkpoint == "" {
		if r.cfg.Resume {
			return nil, fmt.Errorf("campaign: Resume requires a Checkpoint directory")
		}
		return nil, nil
	}
	j, err := journal.Open(filepath.Join(r.cfg.Checkpoint, versionsDirName),
		journal.Meta{Fingerprint: r.checkpointFingerprint(), Shard: shard}, r.cfg.Resume)
	if err != nil {
		return nil, err
	}
	j.AfterAppend = r.cfg.checkpointProbe
	vc := &versionCheckpoint{
		j:        j,
		resumed:  r.obs.Counter("journal.cells.resumed"),
		executed: r.obs.Counter("journal.cells.executed"),
	}
	if r.cfg.Resume {
		recs := j.Records()
		vc.loaded = make(map[string]journal.Record, len(recs))
		for _, rec := range recs {
			vc.loaded[rec.Trace] = rec
		}
	}
	return vc, nil
}

// append records one completed cell durably; nil-safe.
func (vc *versionCheckpoint) append(rec journal.Record) {
	if vc == nil {
		return
	}
	vc.executed.Inc()
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.err == nil {
		vc.err = vc.j.Append(rec)
	}
}

// close flushes and closes the journal; nil-safe.
func (vc *versionCheckpoint) close() error {
	if vc == nil {
		return nil
	}
	err := vc.err
	if cerr := vc.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// record looks up a loaded journal record; nil-safe.
func (vc *versionCheckpoint) record(trace string) (journal.Record, bool) {
	if vc == nil || len(vc.loaded) == 0 {
		return journal.Record{}, false
	}
	rec, ok := vc.loaded[trace]
	return rec, ok
}

// newVersionResult builds the empty matrix for this runner's roster.
func (r *Runner) newVersionResult(scenarios []VersionScenario) *VersionResult {
	res := &VersionResult{
		Servers: make(map[string]map[string]*VersionCounts, len(r.servers)),
		Clients: make(map[string]*VersionCounts, len(r.clients)),
	}
	for _, sc := range scenarios {
		res.Scenarios = append(res.Scenarios, sc.Name)
	}
	for _, c := range r.clients {
		res.Clients[c.Name()] = &VersionCounts{}
		res.ClientOrder = append(res.ClientOrder, c.Name())
	}
	return res
}

// RunVersions executes the version matrix across every configured
// server framework. The matrix is deterministic at any worker count,
// journals per completed service cell when a checkpoint is
// configured, and resumes into a byte-identical result.
func (r *Runner) RunVersions(ctx context.Context) (*VersionResult, error) {
	scenarios := VersionScenarios()
	res := r.newVersionResult(scenarios)
	vc, err := r.openVersionCheckpoint()
	if err != nil {
		return nil, err
	}
	for _, server := range r.servers {
		if err := r.runVersionsServer(ctx, server, scenarios, res, vc); err != nil {
			// Close flushes, so every cell completed before the
			// interruption is durable for the resume.
			_ = vc.close()
			return nil, fmt.Errorf("versions on %s: %w", server.Name(), err)
		}
	}
	if err := vc.close(); err != nil {
		return nil, err
	}
	return res, nil
}

// versionSvcState counts one service cell's outstanding (client)
// jobs; the worker that completes the last one journals the cell.
type versionSvcState struct {
	remaining atomic.Int32
}

func (r *Runner) runVersionsServer(ctx context.Context, server framework.ServerFramework,
	scenarios []VersionScenario, res *VersionResult, vc *versionCheckpoint) error {
	serverName := server.Name()
	published, _, err := r.Publish(ctx, server)
	if err != nil {
		return err
	}

	host := transport.NewHost()
	host.SetVersionPolicy(&transport.VersionPolicy{
		Codec:      soap.V11,
		Strictness: framework.VersionStrictness(serverName),
	})
	endpoints, collisions, err := r.deployPublished(host, published)
	if err != nil {
		return err
	}
	res.PathCollisions += collisions
	wire := newVersionWire(host)

	nc, ns := len(r.clients), len(scenarios)
	outcomes := make([]VersionOutcome, len(published)*nc*ns)

	// Resume: replay journaled service cells into their slots and keep
	// them out of the worker feed.
	sentinelTrace := versionSentinelTrace(r.cfg.Shard, serverName)
	_, sentinel := vc.record(sentinelTrace)
	replayed := make([]bool, len(published))
	for si := range published {
		rec, ok := vc.record(versionTrace(serverName, published[si].Class))
		if !ok {
			continue
		}
		if err := r.replayVersionRecord(&rec, ns, outcomes[si*nc*ns:(si+1)*nc*ns]); err != nil {
			return err
		}
		replayed[si] = true
		vc.resumed.Inc()
	}

	states := make([]versionSvcState, len(published))
	for si := range states {
		states[si].remaining.Store(int32(nc))
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				si, ci := idx/nc, idx%nc
				r.versionCombination(ctx, wire, r.clients[ci], &published[si],
					endpoints[published[si].Class], scenarios, outcomes[idx*ns:(idx+1)*ns])
				if states[si].remaining.Add(-1) == 0 {
					// All nc client rows of this service are in their slots
					// (the atomic counter orders their writes before this
					// read), so the cell journals complete.
					r.journalVersions(vc, serverName, published[si].Class, ns,
						outcomes[si*nc*ns:(si+1)*nc*ns])
				}
			}
		}()
	}
	interrupted := false
feed:
	for si := range published {
		if replayed[si] {
			continue
		}
		for ci := 0; ci < nc; ci++ {
			select {
			case <-ctx.Done():
				interrupted = true
				break feed
			case jobs <- si*nc + ci:
			}
		}
	}
	close(jobs)
	wg.Wait()
	if interrupted || ctx.Err() != nil {
		return ctx.Err()
	}

	// Serial fixed-order fold: counters land here, inside the
	// determinism contract, never in workers.
	perScenario := make(map[string]*VersionCounts, ns)
	for _, sc := range scenarios {
		perScenario[sc.Name] = &VersionCounts{}
	}
	for idx, o := range outcomes {
		perScenario[scenarios[idx%ns].Name].Add(o)
		res.Clients[r.clients[(idx/ns)%nc].Name()].Add(o)
		r.met.recordVersion(o)
	}
	res.Servers[serverName] = perScenario
	res.ServerOrder = append(res.ServerOrder, serverName)

	if !sentinel {
		// The stage completed cleanly: the sentinel is what merge
		// completeness keys on, and it carries the stage's collision
		// count (the one fold input not reconstructible per cell).
		vc.append(journal.Record{
			Trace:      sentinelTrace,
			Server:     serverName,
			Mode:       versionsCompleteMode,
			Collisions: collisions,
		})
	}
	return nil
}

// versionCombination runs the static steps once for the (service ×
// client) pair, then exchanges one invocation per scenario, writing
// outcomes into the cell slots.
func (r *Runner) versionCombination(ctx context.Context, wire *versionWire,
	client framework.ClientFramework, svc *PublishedService, ep *transport.Endpoint,
	scenarios []VersionScenario, cells []VersionOutcome) {
	op, ok := invocable(client, svc, ep, r.cfg.Reparse)
	if !ok || op == "" {
		for i := range cells {
			cells[i] = VersionSkipped
		}
		return
	}
	strict := framework.VersionStrictness(client.Name())
	for vi, sc := range scenarios {
		req, probeField := buildEchoRequest(ep, op, svc.Class)
		trace := obs.TraceID("versions", svc.Server, svc.Class, client.Name(), sc.Name)
		bridge := transport.NewLocalBridge(wire).
			WithCodec(sc.Codec).
			WithStrictness(strict).
			WithRetry(versionRetryPolicy(sc.Name)).
			WithObs(r.obs)
		resp, err := bridge.Invoke(obs.WithTrace(ctx, trace), ep.Path, req)
		cells[vi] = classifyVersion(sc, wire.take(trace), resp, err, op+"Response", req.Fields, probeField)
	}
}

// journalVersions records one fully exchanged service cell: the
// outcome row of every client, in roster and scenario order.
func (r *Runner) journalVersions(vc *versionCheckpoint, server, class string,
	ns int, cells []VersionOutcome) {
	if vc == nil {
		return
	}
	vers := make([]journal.VersionRecord, len(r.clients))
	for ci := range r.clients {
		outs := make([]string, ns)
		for vi := 0; vi < ns; vi++ {
			outs[vi] = cells[ci*ns+vi].String()
		}
		vers[ci] = journal.VersionRecord{Client: r.clients[ci].Name(), Outcomes: outs}
	}
	vc.append(journal.Record{
		Trace:     versionTrace(server, class),
		Server:    server,
		Class:     class,
		Mode:      versionsMode,
		Published: true,
		Versions:  vers,
	})
}

// replayVersionRecord decodes one journaled service cell into its
// outcome slots, validating the record against the roster and the
// scenario catalog (both are fingerprint-pinned, so a mismatch means
// a corrupted store, not a configuration drift).
func (r *Runner) replayVersionRecord(rec *journal.Record, ns int, cells []VersionOutcome) error {
	if rec.Mode != versionsMode {
		return fmt.Errorf("campaign: journal record %s: mode %q is not a versions cell", rec.Trace, rec.Mode)
	}
	if len(rec.Versions) != len(r.clients) {
		return fmt.Errorf("campaign: journal record %s: %d client rows, roster has %d",
			rec.Trace, len(rec.Versions), len(r.clients))
	}
	for ci := range rec.Versions {
		vr := rec.Versions[ci]
		if vr.Client != r.clients[ci].Name() {
			return fmt.Errorf("campaign: journal record %s: row %d is for client %q, roster has %q",
				rec.Trace, ci, vr.Client, r.clients[ci].Name())
		}
		if len(vr.Outcomes) != ns {
			return fmt.Errorf("campaign: journal record %s: %d outcomes for client %q, catalog has %d scenarios",
				rec.Trace, len(vr.Outcomes), vr.Client, ns)
		}
		for vi, s := range vr.Outcomes {
			o, err := parseVersionOutcome(s)
			if err != nil {
				return fmt.Errorf("campaign: journal record %s: %w", rec.Trace, err)
			}
			cells[ci*ns+vi] = o
		}
	}
	return nil
}

// MergeVersions folds the shard version journals under dirs into one
// VersionResult, using a runner built from opts — which must describe
// the exact campaign the shards ran. The package-level convenience
// form of Runner.MergeVersions.
func MergeVersions(ctx context.Context, dirs []string, opts ...Option) (*VersionResult, error) {
	return New(opts...).MergeVersions(ctx, dirs)
}

// MergeVersions folds completed shard version journals (the
// <checkpoint>/versions stores) into one VersionResult identical to a
// single-process run of the same configuration, except that
// PathCollisions sums each shard's deploy-time count — collisions are
// a property of which classes co-deploy, so a sharded campaign may
// legitimately observe fewer than an unsharded one. Every shard must
// hold its completion sentinel for every server stage; an interrupted
// shard is resumed in place before merging. The merge itself
// exchanges nothing: every cell replays from its journal record, and
// because every fold input is a commutative sum, replay order is
// free.
func (r *Runner) MergeVersions(ctx context.Context, dirs []string) (*VersionResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("campaign: merge needs at least one shard journal directory")
	}
	if r.cfg.Shard.enabled() {
		return nil, fmt.Errorf("campaign: the merge coordinator runs unsharded (drop shard %s)", r.cfg.Shard)
	}
	if r.cfg.Checkpoint != "" || r.cfg.Resume {
		return nil, fmt.Errorf("campaign: merge reads shard journals; it does not take its own Checkpoint/Resume")
	}

	fp := r.checkpointFingerprint()
	metas := make([]*journal.Meta, 0, len(dirs))
	loaded := make(map[string]journal.Record)
	for _, dir := range dirs {
		vdir := filepath.Join(dir, versionsDirName)
		meta, recs, err := journal.Load(vdir)
		if err != nil {
			return nil, err
		}
		if meta.Fingerprint != fp {
			return nil, fmt.Errorf("%w: %s (merge must be invoked with the exact configuration the shards ran)",
				journal.ErrFingerprint, vdir)
		}
		spec := ShardSpec{}
		if sh := meta.Shard; sh != nil {
			spec = ShardSpec{Index: sh.Index, Count: sh.Count}
			if sh.Lease != "" && sh.Lease != shardLease(fp, sh.Index, sh.Count) {
				return nil, fmt.Errorf("campaign: %s: lease %s was not issued for shard %d/%d of this campaign",
					vdir, sh.Lease, sh.Index, sh.Count)
			}
		}
		for _, rec := range recs {
			if prev, dup := loaded[rec.Trace]; dup {
				return nil, fmt.Errorf("campaign: shard journals overlap: cell %s (%s on %s) journaled twice",
					rec.Trace, prev.Class, prev.Server)
			}
			loaded[rec.Trace] = rec
		}
		// Completeness: a server stage appends its sentinel only after
		// every service cell of the stage is journaled, so the sentinel
		// set is the completion proof.
		for _, server := range r.servers {
			if _, ok := loaded[versionSentinelTrace(spec, server.Name())]; !ok {
				return nil, fmt.Errorf("campaign: %s holds no completed %s stage — resume the shard to completion first",
					vdir, server.Name())
			}
		}
		metas = append(metas, meta)
	}
	if err := journal.CheckShards(metas); err != nil {
		return nil, err
	}

	scenarios := VersionScenarios()
	ns := len(scenarios)
	res := r.newVersionResult(scenarios)
	roster := make(map[string]bool, len(r.servers))
	for _, server := range r.servers {
		name := server.Name()
		roster[name] = true
		perScenario := make(map[string]*VersionCounts, ns)
		for _, sc := range scenarios {
			perScenario[sc.Name] = &VersionCounts{}
		}
		res.Servers[name] = perScenario
		res.ServerOrder = append(res.ServerOrder, name)
	}
	resumed := r.obs.Counter("journal.cells.resumed")
	traces := make([]string, 0, len(loaded))
	for trace := range loaded {
		traces = append(traces, trace)
	}
	sort.Strings(traces)
	cells := make([]VersionOutcome, len(r.clients)*ns)
	for _, trace := range traces {
		rec := loaded[trace]
		if !roster[rec.Server] {
			return nil, fmt.Errorf("campaign: journal record %s is for server %q, not in this roster", rec.Trace, rec.Server)
		}
		if rec.Mode == versionsCompleteMode {
			res.PathCollisions += rec.Collisions
			continue
		}
		if err := r.replayVersionRecord(&rec, ns, cells); err != nil {
			return nil, err
		}
		perScenario := res.Servers[rec.Server]
		for idx, o := range cells {
			perScenario[scenarios[idx%ns].Name].Add(o)
			res.Clients[r.clients[idx/ns].Name()].Add(o)
			r.met.recordVersion(o)
		}
		resumed.Inc()
	}
	return res, nil
}
