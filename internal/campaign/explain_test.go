package campaign

import (
	"testing"

	"wsinterop/internal/typesys"
)

func TestExplainNarrativeClass(t *testing.T) {
	r := NewRunner(Config{})
	e, err := r.Explain("Metro", typesys.JavaW3CEndpointReference)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !e.Deployed {
		t.Fatal("W3CEndpointReference should deploy on Metro")
	}
	if len(e.Compliance) == 0 {
		t.Error("expected WS-I findings")
	}
	if len(e.Clients) != 11 {
		t.Fatalf("clients = %d, want 11", len(e.Clients))
	}
	failures := 0
	var axis1 *ClientExplanation
	for i := range e.Clients {
		if e.Clients[i].Failed() {
			failures++
		}
		if e.Clients[i].Client == "Apache Axis1" {
			axis1 = &e.Clients[i]
		}
	}
	if failures != 9 {
		t.Errorf("failing clients = %d, want 9 (Table III row a)", failures)
	}
	if axis1 == nil || !axis1.ArtifactsProduced {
		t.Error("Axis1 fails silently: artifacts must exist alongside the error")
	}
}

func TestExplainRefusedDeployment(t *testing.T) {
	r := NewRunner(Config{})
	e, err := r.Explain("Metro", typesys.JavaFuture)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if e.Deployed {
		t.Fatal("Metro must refuse Future")
	}
	if e.DeployError == "" {
		t.Error("refusal reason missing")
	}
	if len(e.Clients) != 0 {
		t.Error("no client runs without a document")
	}
}

func TestExplainErrors(t *testing.T) {
	r := NewRunner(Config{})
	if _, err := r.Explain("NoSuchServer", "x.Y"); err == nil {
		t.Error("unknown server should fail")
	}
	if _, err := r.Explain("Metro", "System.Data.DataTable"); err == nil {
		t.Error("C# class is not in the Java catalog")
	}
	if _, err := r.Explain("WCF .NET", "no.such.Class"); err == nil {
		t.Error("unknown class should fail")
	}
}
