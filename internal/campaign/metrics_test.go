package campaign

import (
	"context"
	"reflect"
	"testing"
	"time"

	"wsinterop/internal/obs"
)

// frozenRegistry pins the registry clock, so every stage duration
// observes as zero and histograms become worker-independent — the
// precondition of the metrics determinism contract.
func frozenRegistry() *obs.Registry {
	fixed := time.Unix(1700000000, 0)
	return obs.NewRegistryWithClock(func() time.Time { return fixed })
}

// metricsSnapshot runs the static campaign plus both extensions at the
// given worker count on a frozen clock and exports the registry.
func metricsSnapshot(t *testing.T, workers int) *obs.Snapshot {
	t.Helper()
	reg := frozenRegistry()
	r := NewRunner(Config{Limit: 2, Workers: workers, Obs: reg})
	ctx := context.Background()
	if _, err := r.Run(ctx); err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	if _, err := r.RunCommunication(ctx); err != nil {
		t.Fatalf("communication (workers=%d): %v", workers, err)
	}
	if _, err := r.RunRobustness(ctx); err != nil {
		t.Fatalf("robustness (workers=%d): %v", workers, err)
	}
	if _, err := r.RunVersions(ctx); err != nil {
		t.Fatalf("versions (workers=%d): %v", workers, err)
	}
	return reg.Snapshot()
}

// TestMetricsDeterministicAcrossWorkers is the acceptance check for the
// observability layer: counters are exact and histograms (on a frozen
// clock) identical at any worker count. Gauges — queue depth, worker
// count — are live state and explicitly outside the contract.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	serial := metricsSnapshot(t, 1)
	parallel := metricsSnapshot(t, 8)
	if !reflect.DeepEqual(serial.Counters, parallel.Counters) {
		t.Errorf("counters differ across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
			serial.Counters, parallel.Counters)
	}
	if !reflect.DeepEqual(serial.Histograms, parallel.Histograms) {
		t.Errorf("histograms differ across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
			serial.Histograms, parallel.Histograms)
	}
}

func counterValue(snap *obs.Snapshot, name string) int64 {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return -1
}

func TestResultCarriesMetrics(t *testing.T) {
	r := NewRunner(Config{Limit: 2, Workers: 2})
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil")
	}
	for _, name := range []string{
		"campaign.publish.total", "campaign.wsi.checks",
		"campaign.generate.runs", "campaign.compile.runs", "campaign.test.total",
	} {
		if v := counterValue(res.Metrics, name); v <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, v)
		}
	}
	found := false
	for _, h := range res.Metrics.Histograms {
		if h.Name == "campaign.generate.seconds" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("campaign.generate.seconds histogram empty or missing")
	}
}

// TestCommunicationTraceJoin proves the per-cell trace ID travels from
// the campaign worker through the LocalBridge onto the wire: every
// communication event's trace recomputes from its (server, class,
// client) coordinates, and the sniffer — which reads the trace off the
// request header — feeds the same registry.
func TestCommunicationTraceJoin(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner(Config{Limit: 2, Workers: 2, Obs: reg})
	if _, err := r.RunCommunication(context.Background()); err != nil {
		t.Fatalf("communication: %v", err)
	}
	if reg.Counter("sniffer.exchanges").Value() == 0 {
		t.Error("sniffer not wired to the runner registry")
	}
	cells := 0
	for _, e := range reg.Events() {
		if e.Stage != "communication" {
			continue
		}
		cells++
		if want := obs.TraceID(e.Server, e.Class, e.Client); e.Trace != want {
			t.Errorf("event trace %q does not recompute from (%s, %s, %s): want %q",
				e.Trace, e.Server, e.Class, e.Client, want)
		}
	}
	if cells == 0 {
		t.Error("no communication events emitted")
	}
}

// TestRobustnessObservability proves the fault-injection middleware and
// the retrying bridges feed the runner registry: faults fire and are
// counted, the transient abort provokes retries, and the outcome fold
// lands in the robustness counters.
func TestRobustnessObservability(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner(Config{Limit: 2, Workers: 2, Obs: reg})
	res, err := r.RunRobustness(context.Background())
	if err != nil {
		t.Fatalf("robustness: %v", err)
	}
	if reg.Counter("faultinject.injected").Value() == 0 {
		t.Error("no injected faults counted")
	}
	if reg.Counter("transport.retries").Value() == 0 {
		t.Error("no retries counted — the abort-once fault should provoke them")
	}
	totals := res.Totals()
	if got := reg.Counter("campaign.robust.detected").Value(); got != int64(totals.Detected) {
		t.Errorf("robust.detected counter = %d, matrix says %d", got, totals.Detected)
	}
	if got := reg.Counter("campaign.robust.recovered").Value(); got != int64(totals.Recovered) {
		t.Errorf("robust.recovered counter = %d, matrix says %d", got, totals.Recovered)
	}
}
