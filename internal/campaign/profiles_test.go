package campaign

import (
	"context"
	"reflect"
	"testing"

	"wsinterop/internal/wsi"
)

// TestProfilesMatrixConsistency pins the per-profile compliance matrix:
// the roster mirrors the wsi registry, the memoized (dedup) and
// per-class (NoDedup) paths tally identical matrices, every cell is
// internally consistent with the server summaries, and the IVOA
// profile — whose check set is a strict superset of BP 1.1's core
// checks — never admits a service BP 1.1 rejects.
func TestProfilesMatrixConsistency(t *testing.T) {
	memo, err := NewRunner(Config{Limit: 150, Workers: 4}).Run(context.Background())
	if err != nil {
		t.Fatalf("memoized run: %v", err)
	}
	perClass, err := NewRunner(Config{Limit: 150, Workers: 2, NoDedup: true}).Run(context.Background())
	if err != nil {
		t.Fatalf("per-class run: %v", err)
	}

	roster := wsi.Profiles()
	if len(memo.Profiles) != len(roster) {
		t.Fatalf("result carries %d profiles, registry has %d", len(memo.Profiles), len(roster))
	}
	if len(roster) < 2 {
		t.Fatalf("expected at least two registered profiles, got %d", len(roster))
	}
	for i, p := range roster {
		if memo.Profiles[i].ID != p.ID || memo.Profiles[i].Name != p.Name {
			t.Errorf("profile %d: result has %s/%s, registry has %s/%s",
				i, memo.Profiles[i].ID, memo.Profiles[i].Name, p.ID, p.Name)
		}
	}

	// The memoized (shape, profile) verdicts and the per-class checks
	// must produce the same matrix.
	if !reflect.DeepEqual(memo.Profiles, perClass.Profiles) {
		t.Errorf("memoized profile matrix diverges from per-class:\n memo %+v\n per-class %+v",
			memo.Profiles, perClass.Profiles)
	}

	byID := make(map[string]*ProfileCompliance, len(memo.Profiles))
	for _, pc := range memo.Profiles {
		byID[pc.ID] = pc
		sum := 0
		for server, n := range pc.Compliant {
			sum += n
			srv := memo.Servers[server]
			if srv == nil {
				t.Errorf("profile %s counts unknown server %q", pc.ID, server)
				continue
			}
			if n < 0 || n > srv.Deployed {
				t.Errorf("profile %s × %s: %d compliant of %d deployed", pc.ID, server, n, srv.Deployed)
			}
		}
		if sum != pc.TotalCompliant {
			t.Errorf("profile %s: per-server cells sum to %d, TotalCompliant is %d", pc.ID, sum, pc.TotalCompliant)
		}
		if pc.TotalCompliant > memo.TotalPublished {
			t.Errorf("profile %s: %d compliant of %d published", pc.ID, pc.TotalCompliant, memo.TotalPublished)
		}
	}

	bp11, ivoa := byID["bp11"], byID["ivoa"]
	if bp11 == nil || ivoa == nil {
		t.Fatalf("matrix is missing a built-in profile: %+v", memo.Profiles)
	}
	if bp11.TotalCompliant == 0 {
		t.Error("no service compliant with bp11 — the corpus is overwhelmingly compliant, so the tally is miswired")
	}
	for server, n := range ivoa.Compliant {
		if n > bp11.Compliant[server] {
			t.Errorf("%s: ivoa admits %d services but bp11 only %d — ivoa checks are a superset of bp11's",
				server, n, bp11.Compliant[server])
		}
	}
}
