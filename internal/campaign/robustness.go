package campaign

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wsinterop/internal/faultinject"
	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
)

// This file implements the Robustness mode of the communication
// extension (`interop -faults`): every (published service × client)
// exchange is repeated once per catalog fault with a wire-level fault
// injector between client and host, and the outcome is classified
// into the robustness taxonomy below. The mode is the adverse-
// conditions complement of RunCommunication — where that run proves
// clean combinations complete the round trip, this one proves the
// client surfaces (or recovers from) every failure the wire can
// signal, and that no wire-signaled failure is reported as success.

// RobustOutcome classifies one (service × client × fault) cell.
type RobustOutcome int

// Robustness outcomes.
const (
	// RobustSkipped: the static steps blocked the combination or the
	// artifacts expose nothing to invoke; no exchange happened.
	RobustSkipped RobustOutcome = iota + 1
	// RobustDetected: the client surfaced the injected fault — a typed
	// transport/decode error, or response validation rejecting a
	// payload that no longer matches the declared response message.
	RobustDetected
	// RobustMasked: the round trip succeeded with intact echo
	// semantics despite the fault; the client absorbed a conformance
	// violation (e.g. a wrong Content-Type) without noticing.
	RobustMasked
	// RobustWrongSuccess: the client reported success although the
	// wire signaled failure or the payload was corrupted — the
	// status-blind bug class this mode exists to catch.
	RobustWrongSuccess
	// RobustRecovered: the invocation succeeded after at least one
	// retry; the retry policy turned a transient fault into success.
	RobustRecovered
)

// String implements fmt.Stringer.
func (o RobustOutcome) String() string {
	switch o {
	case RobustSkipped:
		return "skipped"
	case RobustDetected:
		return "detected-fault"
	case RobustMasked:
		return "masked-fault"
	case RobustWrongSuccess:
		return "wrong-success"
	case RobustRecovered:
		return "retry-recovered"
	default:
		return fmt.Sprintf("RobustOutcome(%d)", int(o))
	}
}

// RobustCounts aggregates cells of one matrix slice.
type RobustCounts struct {
	Cells        int
	Skipped      int
	Detected     int
	Masked       int
	WrongSuccess int
	Recovered    int
}

// Add folds one outcome into the counts.
func (c *RobustCounts) Add(o RobustOutcome) {
	c.Cells++
	switch o {
	case RobustSkipped:
		c.Skipped++
	case RobustDetected:
		c.Detected++
	case RobustMasked:
		c.Masked++
	case RobustWrongSuccess:
		c.WrongSuccess++
	case RobustRecovered:
		c.Recovered++
	}
}

// add accumulates another partial count.
func (c *RobustCounts) add(o *RobustCounts) {
	c.Cells += o.Cells
	c.Skipped += o.Skipped
	c.Detected += o.Detected
	c.Masked += o.Masked
	c.WrongSuccess += o.WrongSuccess
	c.Recovered += o.Recovered
}

// RobustResult is the (server × client × fault) robustness matrix,
// aggregated along its two presentation axes.
type RobustResult struct {
	// Faults lists the catalog rows in their fixed order.
	Faults []string
	// Servers maps server name → fault name → counts.
	Servers     map[string]map[string]*RobustCounts
	ServerOrder []string
	// Clients maps client name → counts across all servers and faults.
	Clients     map[string]*RobustCounts
	ClientOrder []string
	// PathCollisions counts deployments that needed a suffixed path.
	PathCollisions int
}

// FaultTotals sums each fault row across servers.
func (r *RobustResult) FaultTotals() map[string]*RobustCounts {
	totals := make(map[string]*RobustCounts, len(r.Faults))
	for _, f := range r.Faults {
		t := &RobustCounts{}
		for _, server := range r.ServerOrder {
			t.add(r.Servers[server][f])
		}
		totals[f] = t
	}
	return totals
}

// Totals sums the whole matrix.
func (r *RobustResult) Totals() RobustCounts {
	var t RobustCounts
	for _, server := range r.ServerOrder {
		for _, f := range r.Faults {
			t.add(r.Servers[server][f])
		}
	}
	return t
}

// robustRetryPolicy builds the per-cell client policy: bounded
// attempts, exponential backoff with a deterministic jitter, a no-op
// sleeper (the matrix must be wall-clock-free), and an Annotate hook
// that stamps the fault directive plus attempt number onto every
// request and records how many attempts ran.
func robustRetryPolicy(directive string, attempts *int) *transport.RetryPolicy {
	return &transport.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Jitter:      func(attempt int, d time.Duration) time.Duration { return d + time.Duration(attempt)*time.Microsecond },
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Annotate: func(attempt int, h http.Header) {
			*attempts = attempt
			h.Set(faultinject.HeaderFault, directive)
			h.Set(faultinject.HeaderAttempt, strconv.Itoa(attempt))
		},
	}
}

// robustExchange is one completed faulted invocation, bundled for
// classification.
type robustExchange struct {
	resp       *soap.Message
	wantLocal  string
	sent       map[string]string
	probeField string
}

// validShape applies the client-side deserialization check a generated
// proxy performs against the WSDL-declared response message: correct
// wrapper name and exactly the expected echo fields.
func (x *robustExchange) validShape() bool {
	if x.resp.Local != x.wantLocal || len(x.resp.Fields) != len(x.sent) {
		return false
	}
	for name := range x.sent {
		if _, ok := x.resp.Fields[name]; !ok {
			return false
		}
	}
	return true
}

// classifyRobust maps one exchange outcome into the taxonomy. Order
// matters: a surfaced error is always detection; an invalid response
// shape counts as detection too (the proxy's deserialization
// validation rejects it); a success that needed retries is recovery;
// a success against a fault the wire unambiguously signaled is the
// wrong-success bug class; a corrupted-but-accepted echo likewise;
// everything else the client absorbed silently.
func classifyRobust(f faultinject.Fault, attempts int, x *robustExchange, err error) RobustOutcome {
	if err != nil {
		return RobustDetected
	}
	if !x.validShape() {
		return RobustDetected
	}
	if attempts > 1 {
		return RobustRecovered
	}
	if f.MustError {
		return RobustWrongSuccess
	}
	if echoed, _ := x.resp.Field(x.probeField); echoed != x.sent[x.probeField] {
		return RobustWrongSuccess
	}
	return RobustMasked
}

// RunRobustness executes the Robustness mode across every configured
// server framework. The outcome matrix is deterministic: cells land in
// pre-indexed slots and fold in fixed (server, service, client, fault)
// order, so worker count and scheduling never change the result.
func (r *Runner) RunRobustness(ctx context.Context) (*RobustResult, error) {
	catalog := faultinject.Catalog()
	res := &RobustResult{
		Servers: make(map[string]map[string]*RobustCounts, len(r.servers)),
		Clients: make(map[string]*RobustCounts, len(r.clients)),
	}
	for _, f := range catalog {
		res.Faults = append(res.Faults, f.Name)
	}
	for _, c := range r.clients {
		res.Clients[c.Name()] = &RobustCounts{}
		res.ClientOrder = append(res.ClientOrder, c.Name())
	}
	for _, server := range r.servers {
		if err := r.runRobustnessServer(ctx, server, catalog, res); err != nil {
			return nil, fmt.Errorf("robustness on %s: %w", server.Name(), err)
		}
	}
	return res, nil
}

func (r *Runner) runRobustnessServer(ctx context.Context, server framework.ServerFramework,
	catalog []faultinject.Fault, res *RobustResult) error {
	published, _, err := r.Publish(ctx, server)
	if err != nil {
		return err
	}

	host := transport.NewHost()
	endpoints, collisions, err := r.deployPublished(host, published)
	if err != nil {
		return err
	}
	res.PathCollisions += collisions

	injector := faultinject.New(host)
	// Keep the matrix wall-clock-free: the delay fault is classified by
	// what the client does with a slow-but-valid response, not by
	// actually stalling thousands of cells.
	injector.Sleep = func(time.Duration) {}
	injector.Obs = r.obs

	nc, nf := len(r.clients), len(catalog)
	outcomes := make([]RobustOutcome, len(published)*nc*nf)

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				si, ci := idx/nc, idx%nc
				r.robustCombination(ctx, injector, r.clients[ci], &published[si],
					endpoints[published[si].Class], catalog, outcomes[idx*nf:(idx+1)*nf])
			}
		}()
	}
feed:
	for idx := 0; idx < len(published)*nc; idx++ {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- idx:
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	perFault := make(map[string]*RobustCounts, nf)
	for _, f := range catalog {
		perFault[f.Name] = &RobustCounts{}
	}
	for idx, o := range outcomes {
		perFault[catalog[idx%nf].Name].Add(o)
		res.Clients[r.clients[(idx/nf)%nc].Name()].Add(o)
		// Counters fold here, in the fixed-order merge, not in workers:
		// the robustness metrics stay inside the determinism contract.
		r.met.recordRobust(o)
	}
	res.Servers[server.Name()] = perFault
	res.ServerOrder = append(res.ServerOrder, server.Name())
	return nil
}

// robustCombination runs steps 2–3 once for the (service × client)
// pair, then exchanges one faulted invocation per catalog entry,
// writing outcomes into the cell slots.
func (r *Runner) robustCombination(ctx context.Context, handler http.Handler,
	client framework.ClientFramework, svc *PublishedService, ep *transport.Endpoint,
	catalog []faultinject.Fault, cells []RobustOutcome) {
	op, ok := invocable(client, svc, ep, r.cfg.Reparse)
	if !ok || op == "" {
		for i := range cells {
			cells[i] = RobustSkipped
		}
		return
	}

	for fi, f := range catalog {
		req, probeField := buildEchoRequest(ep, op, svc.Class)
		// The cell's trace carries (server, class, client, fault), so the
		// injector's fired-fault log joins back to exactly one matrix cell.
		trace := obs.TraceID(svc.Server, svc.Class, client.Name(), f.Name)
		attempts := 0
		bridge := transport.NewLocalBridge(handler).
			WithRetry(robustRetryPolicy(f.Directive, &attempts)).
			WithObs(r.obs)
		resp, err := bridge.Invoke(obs.WithTrace(ctx, trace), ep.Path, req)
		var x *robustExchange
		if err == nil {
			x = &robustExchange{resp: resp, wantLocal: op + "Response", sent: req.Fields, probeField: probeField}
		}
		cells[fi] = classifyRobust(f, attempts, x, err)
	}
}
