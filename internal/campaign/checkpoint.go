package campaign

// This file wires the durable checkpoint store (internal/journal) into
// the campaign runner: recording one journal record per completed cell
// from a single writer goroutine, and — on resume — replaying
// journaled cells into the deterministic merge instead of re-executing
// them (DESIGN.md §9).
//
// The replay contract is exact equivalence: a resumed run's Result,
// dedup statistics, and metrics counters are identical to an
// uninterrupted run's. Two properties carry that:
//
//   - Every record stores its publish route (recordMode) and, per
//     client, whether the test actually executed or was served by the
//     shape memo, so replay re-applies the precise counter and
//     histogram contributions the original execution made.
//
//   - The shape memo table is re-seeded from the journal before the
//     executed remainder starts (seedMemoFromJournal), so remaining
//     classes take exactly the memo paths they would have taken had
//     the run never stopped. The counter totals are invariant under
//     *which* class of a shape happens to be the builder: the builder
//     contributes shapes+1 plus the full publish metrics, and every
//     other same-shape class contributes one memo hit — so a shape
//     whose builder record was lost is simply rebuilt by the first
//     executing class, with identical totals.

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"wsinterop/internal/framework"
	"wsinterop/internal/journal"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/shape"
)

// recordMode is the publish route a cell took, mirroring the branches
// of publishOne. Replay dispatches on it to re-apply the route's exact
// counter contributions.
type recordMode uint8

const (
	modeUnknown      recordMode = iota
	modeDirect                  // memo layer off (Config.NoDedup)
	modeFallback                // class failed the shape.Memoizable guard
	modeBuilt                   // first-seen class of its shape: full per-class path
	modeMemoRejected            // memoized NotDeployable outcome
	modeMemoFallback            // shape failed template verification: per-class path
	modeMemoized                // rendered from the shape's verified template
)

var modeIDs = map[recordMode]string{
	modeDirect:       "direct",
	modeFallback:     "fallback",
	modeBuilt:        "built",
	modeMemoRejected: "memo-rejected",
	modeMemoFallback: "memo-fallback",
	modeMemoized:     "memoized",
}

func (m recordMode) id() string { return modeIDs[m] }

func parseMode(s string) (recordMode, error) {
	for m, id := range modeIDs {
		if id == s {
			return m, nil
		}
	}
	return modeUnknown, fmt.Errorf("unknown publish mode %q", s)
}

// memoRouted reports whether a record's client tests went through the
// shape memo (testFor's memo branch): the shape's verified builder and
// every template-rendered clone.
func memoRouted(rec *journal.Record) bool {
	return rec.Mode == modeMemoized.id() || (rec.Mode == modeBuilt.id() && rec.Verified)
}

// cellTrace is the journal key of one service cell.
func cellTrace(server, class string) string { return obs.TraceID(server, class) }

// journalFlushEvery bounds how many appends the checkpoint journal may
// buffer before forcing a durable flush. The writer goroutine normally
// flushes sooner — whenever its queue runs momentarily dry — so this is
// the worst-case window a completed cell can sit non-durable under
// sustained producer pressure.
const journalFlushEvery = 64

// checkpointState is one Run's open journal plus the serial writer
// goroutine that owns every append.
type checkpointState struct {
	j      *journal.Journal
	loaded map[string]journal.Record // resume: trace → journaled cell
	ch     chan journal.Record
	wg     sync.WaitGroup
	err    error // writer-goroutine only until wg.Wait

	resumed  *obs.Counter // journal.cells.resumed
	executed *obs.Counter // journal.cells.executed
}

// checkpointFingerprint content-addresses everything that shapes the
// cell set and its outcomes. Workers and KeepFailures are deliberately
// excluded: a journal written at one worker count resumes at any
// other, which the equivalence tests exercise.
func (r *Runner) checkpointFingerprint() string {
	parts := []string{
		"wsinterop-campaign-v1",
		"limit=" + strconv.Itoa(r.cfg.Limit),
		"reparse=" + strconv.FormatBool(r.cfg.Reparse),
		"nodedup=" + strconv.FormatBool(r.cfg.NoDedup),
		"variant=" + strconv.Itoa(int(r.cfg.Variant)),
		"style=" + string(r.cfg.Style),
		"custom-catalog=" + strconv.FormatBool(r.cfg.CatalogFor != nil),
		// The primary profile shapes Flagged/Compliant and the roster
		// shapes the per-profile verdict lists, so a journal written
		// under a different profile configuration must be refused.
		"profile=" + r.checker.Profile().ID,
	}
	for _, p := range r.profiles {
		parts = append(parts, "wsi-profile="+p.ID)
	}
	// The version-scenario catalog and the per-framework strictness
	// table shape every -versions verdict, so journaled version matrices
	// are refused across builds that changed either (the same guard the
	// profile roster gets above).
	for _, sc := range VersionScenarios() {
		parts = append(parts, "version-scenario="+sc.Name)
	}
	for _, s := range r.servers {
		parts = append(parts, "server="+s.Name(),
			"strictness="+framework.VersionStrictness(s.Name()).String())
	}
	for _, c := range r.clients {
		parts = append(parts, "client="+c.Name(),
			"strictness="+framework.VersionStrictness(c.Name()).String())
	}
	return obs.TraceID(parts...)
}

// shardMeta is the journal identity of this runner's shard lease; nil
// for a whole-campaign run. The lease is (re)derived from the
// configuration fingerprint, and a caller-supplied lease that was
// minted for a different campaign is refused — the lease check that
// keeps a planned spec bound to its configuration.
func (r *Runner) shardMeta() (*journal.ShardMeta, error) {
	sh := r.cfg.Shard
	if err := sh.validate(); err != nil {
		return nil, err
	}
	if !sh.enabled() {
		return nil, nil
	}
	lease := shardLease(r.checkpointFingerprint(), sh.Index, sh.Count)
	if sh.Lease != "" && sh.Lease != lease {
		return nil, fmt.Errorf("campaign: shard lease %s was issued for a different campaign configuration", sh.Lease)
	}
	return &journal.ShardMeta{Index: sh.Index, Count: sh.Count, Lease: lease}, nil
}

// openCheckpoint opens the journal configured by Config.Checkpoint (a
// no-op without one) and starts the serial writer goroutine.
func (r *Runner) openCheckpoint() error {
	shard, err := r.shardMeta()
	if err != nil {
		return err
	}
	if r.cfg.Checkpoint == "" {
		if r.cfg.Resume {
			return fmt.Errorf("campaign: Resume requires a Checkpoint directory")
		}
		return nil
	}
	meta := journal.Meta{Fingerprint: r.checkpointFingerprint(), Shard: shard}
	if p := r.plan; p != nil {
		// Provenance only — journal.Open does not compare it on resume,
		// so planned and lazy sessions may finish each other's journals.
		meta.Plan = &journal.PlanMeta{Fingerprint: p.fingerprint, Classes: p.classes, Shapes: p.shapes}
	}
	j, err := journal.Open(r.cfg.Checkpoint, meta, r.cfg.Resume)
	if err != nil {
		return err
	}
	j.AfterAppend = r.cfg.checkpointProbe
	// Group-commit: under load the writer drains whatever the workers
	// have queued and flushes once per batch instead of once per cell,
	// with the journal's own FlushEvery as a ceiling on how long a
	// record can stay buffered. AfterAppend still fires once per record
	// at its durable point, so the kill-point probes are unaffected.
	j.FlushEvery = journalFlushEvery
	cs := &checkpointState{
		j:        j,
		ch:       make(chan journal.Record, 256),
		resumed:  r.obs.Counter("journal.cells.resumed"),
		executed: r.obs.Counter("journal.cells.executed"),
	}
	if r.cfg.Resume {
		recs := j.Records()
		cs.loaded = make(map[string]journal.Record, len(recs))
		for _, rec := range recs {
			cs.loaded[rec.Trace] = rec
		}
	}
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		for rec := range cs.ch {
			if cs.err != nil {
				continue // keep draining so producers never block
			}
			cs.err = cs.j.Append(rec)
			// Opportunistically absorb everything already queued, then
			// make the whole batch durable in one flush.
		drain:
			for cs.err == nil {
				select {
				case more, ok := <-cs.ch:
					if !ok {
						break drain
					}
					cs.err = cs.j.Append(more)
				default:
					break drain
				}
			}
			if cs.err == nil {
				cs.err = cs.j.Flush()
			}
		}
	}()
	r.ckpt = cs
	return nil
}

// closeCheckpoint stops the writer, flushes, and closes the journal —
// always called before Run returns, so an interrupted run exits with
// every completed cell durable.
func (r *Runner) closeCheckpoint() error {
	cs := r.ckpt
	if cs == nil {
		return nil
	}
	r.ckpt = nil
	close(cs.ch)
	cs.wg.Wait()
	if n := cs.j.Compactions(); n > 0 {
		r.obs.Counter("journal.compactions").Add(int64(n))
	}
	err := cs.err
	if cerr := cs.j.Close(); err == nil {
		err = cerr
	}
	return err
}

// append hands one completed cell to the writer goroutine; nil-safe so
// call sites need no checkpoint-enabled branch. A replay-only state —
// the merge coordinator's, which has no journal of its own — counts
// the cell but has nowhere to write it.
func (cs *checkpointState) append(rec journal.Record) {
	if cs == nil {
		return
	}
	cs.executed.Inc()
	if cs.ch == nil {
		return
	}
	cs.ch <- rec
}

// journalService records one fully tested service cell.
func (r *Runner) journalService(st *svcState) {
	if r.ckpt == nil {
		return
	}
	svc := &st.svc
	rec := journal.Record{
		Trace:     cellTrace(svc.Server, svc.Class),
		Server:    svc.Server,
		Class:     svc.Class,
		Mode:      st.mode.id(),
		Published: true,
		Verified:  st.verified,
		Flagged:   svc.Flagged,
		Compliant: svc.Compliant,
		Profiles:  r.profileIDs(svc.Profiles),
		Tests:     r.testRecords(st.codes),
	}
	if st.mode == modeBuilt {
		// Only builder records carry the document: resume re-splits the
		// shape template from it, and clones re-render.
		rec.Doc = svc.Doc
	}
	r.ckpt.append(rec)
}

// testRecords expands a columnar outcome row into journal form.
func (r *Runner) testRecords(codes []outcomeCode) []journal.TestRecord {
	recs := make([]journal.TestRecord, len(r.clients))
	for ci := range r.clients {
		code := codes[ci]
		recs[ci] = journal.TestRecord{
			Client:         r.clients[ci].Name(),
			Ran:            code.executed(),
			GenWarning:     code&codeGenWarning != 0,
			GenError:       code&codeGenError != 0,
			CompileRan:     code&codeCompileRan != 0,
			CompileWarning: code&codeCompileWarning != 0,
			CompileError:   code&codeCompileError != 0,
		}
	}
	return recs
}

// journalClone records one broadcast-resolved clone cell. Field-for-
// field what journalService writes for a memoized service: published,
// unverified (clones never byte-verify), the entry's flagged and
// compliance verdicts, and the representative's outcome row with the
// executed bits already cleared by the caller.
func (r *Runner) journalClone(server, class string, e *shapeEntry, codes []outcomeCode) {
	if r.ckpt == nil {
		return
	}
	r.ckpt.append(journal.Record{
		Trace:     cellTrace(server, class),
		Server:    server,
		Class:     class,
		Mode:      modeMemoized.id(),
		Published: true,
		Flagged:   e.flagged,
		Compliant: e.compliant,
		Profiles:  r.profileIDs(e.profiles),
		Tests:     r.testRecords(codes),
	})
}

// journalRejected records a service the description step rejected —
// also a completed cell: resume must not re-publish it.
func (r *Runner) journalRejected(server framework.ServerFramework, def services.Definition, slot publishSlot) {
	if r.ckpt == nil {
		return
	}
	r.ckpt.append(journal.Record{
		Trace:  cellTrace(server.Name(), def.Parameter.Name),
		Server: server.Name(),
		Class:  def.Parameter.Name,
		Mode:   slot.mode.id(),
	})
}

// replayPlan maps this stage's definition indexes to their journaled
// cells; nil when nothing of this stage was journaled.
func (r *Runner) replayPlan(server framework.ServerFramework, defs []services.Definition) map[int]journal.Record {
	cs := r.ckpt
	if cs == nil || len(cs.loaded) == 0 {
		return nil
	}
	plan := make(map[int]journal.Record)
	for i := range defs {
		if rec, ok := cs.loaded[cellTrace(server.Name(), defs[i].Parameter.Name)]; ok {
			plan[i] = rec
		}
	}
	if len(plan) == 0 {
		return nil
	}
	return plan
}

// seedMemoFromJournal reconstructs the shape memo table state the
// journaled cells had established. Builder records rebuild their full
// entry — template re-split from the journaled document and
// re-verified byte-for-byte, once consumed so no executing class
// rebuilds (and double-counts) the shape. Memo-routed records whose
// builder was not journaled get a skeleton entry (once untouched), so
// the first executing class becomes the builder exactly as some class
// was in the interrupted run. Journaled Ran outcomes seed the
// per-client test memo slots, so each (shape, client) test executes at
// most once across the whole resumed campaign.
func (r *Runner) seedMemoFromJournal(server framework.ServerFramework, defs []services.Definition, plan map[int]journal.Record) error {
	if !r.dedupOn() {
		return nil
	}
	entryFor := func(key shapeKey, e *shapeEntry) *shapeEntry {
		r.dedup.mu.Lock()
		defer r.dedup.mu.Unlock()
		if cur := r.dedup.entries[key]; cur != nil {
			return cur
		}
		r.dedup.entries[key] = e
		return e
	}
	// Pass 1: full entries from builder records (at most one per shape
	// in any journal, since a session only builds unseeded shapes).
	for i, rec := range plan {
		if rec.Mode != modeBuilt.id() || !shape.Memoizable(defs[i]) {
			continue
		}
		key := shapeKey{server: server.Name(), fp: shape.Of(defs[i])}
		e := &shapeEntry{tests: make([]testMemo, len(r.clients))}
		e.once.Do(func() {})
		switch {
		case !rec.Published:
			e.rejected = true
		default:
			e.flagged, e.compliant = rec.Flagged, rec.Compliant
			e.profiles = r.profileMask(rec.Profiles)
			if rec.Verified {
				if len(rec.Doc) == 0 {
					return fmt.Errorf("campaign: journal record %s (%s on %s): verified builder without a document", rec.Trace, rec.Class, rec.Server)
				}
				e.tmpl = r.splitShape(server, defs[i], rec.Doc)
				if e.tmpl == nil {
					return fmt.Errorf("campaign: journal record %s (%s on %s): shape template no longer reproduces the journaled document", rec.Trace, rec.Class, rec.Server)
				}
				e.rep = PublishedService{
					Server:    rec.Server,
					Class:     rec.Class,
					Doc:       rec.Doc,
					Flagged:   rec.Flagged,
					Compliant: rec.Compliant,
					Profiles:  e.profiles,
					analysis:  &sharedAnalysis{},
					memo:      e,
				}
			}
		}
		entryFor(key, e)
	}
	// Pass 2: seed executed test outcomes from every memo-routed record.
	for i, rec := range plan {
		if !rec.Published || !memoRouted(&rec) {
			continue
		}
		if len(rec.Tests) != len(r.clients) {
			return fmt.Errorf("campaign: journal record %s: %d client tests, roster has %d", rec.Trace, len(rec.Tests), len(r.clients))
		}
		key := shapeKey{server: server.Name(), fp: shape.Of(defs[i])}
		e := entryFor(key, &shapeEntry{tests: make([]testMemo, len(r.clients))})
		for ci := range rec.Tests {
			tr := rec.Tests[ci]
			if tr.Client != r.clients[ci].Name() {
				return fmt.Errorf("campaign: journal record %s: test %d is for client %q, roster has %q", rec.Trace, ci, tr.Client, r.clients[ci].Name())
			}
			if !tr.Ran {
				continue
			}
			tm := &e.tests[ci]
			code := encodeRecord(tr)
			tm.once.Do(func() { tm.code = code })
		}
	}
	return nil
}

// replayStage replays every journaled cell of one server stage into a
// dedicated replay shard and returns it. Cells are independent — the
// counters they re-apply are atomic and each fold lands in a private
// per-slice shard — so replay runs across the worker pool in
// contiguous index slices and the slice shards tree-merge; the old
// serial replay loop was the dominant cost of resuming (and of every
// distributed Merge, which replays the entire campaign).
func (r *Runner) replayStage(server framework.ServerFramework, replay map[int]journal.Record,
	failures [][]TestResult, prog *progress) (*shard, error) {
	idxs := make([]int, 0, len(replay))
	for i := range replay {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	workers := r.workers()
	if workers > len(idxs) {
		workers = len(idxs)
	}
	shards := make([]*shard, workers)
	errs := make([]error, workers)
	chunk := (len(idxs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := newShard(len(r.clients), len(r.profiles))
		shards[w] = sh
		lo := w * chunk
		hi := lo + chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, slice []int, sh *shard) {
			defer wg.Done()
			for _, i := range slice {
				st, err := r.replayService(replay[i])
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					return
				}
				r.ckpt.resumed.Inc()
				if st != nil {
					fails := r.foldService(st, sh)
					if failures != nil {
						failures[i] = fails
					}
				}
				prog.serviceDone()
			}
		}(w, idxs[lo:hi], sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.obs.Emit(obs.Event{
		Trace:  obs.TraceID(server.Name(), "resume"),
		Stage:  "resume",
		Server: server.Name(),
		Detail: fmt.Sprintf("%d cells replayed from journal", len(replay)),
	})
	return mergeShards(shards), nil
}

// replayService re-applies one journaled cell: the exact counter and
// histogram contributions its original execution made (stage latencies
// observe zero, matching a frozen-clock run), and the reconstructed
// per-client results for the deterministic fold. Returns nil state for
// a cell rejected at the description step.
func (r *Runner) replayService(rec journal.Record) (*svcState, error) {
	mode, err := parseMode(rec.Mode)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal record %s: %w", rec.Trace, err)
	}
	m, d := r.met, r.dedup
	m.publishTotal.Inc()
	switch mode {
	case modeDirect:
		r.replayDirectPublish(&rec)
	case modeFallback:
		d.fallbacks.Add(1)
		m.publishFallback.Inc()
		r.replayDirectPublish(&rec)
	case modeBuilt:
		d.pubTotal.Add(1)
		d.shapes.Add(1)
		r.replayDirectPublish(&rec)
	case modeMemoFallback:
		d.pubTotal.Add(1)
		d.fallbacks.Add(1)
		m.publishFallback.Inc()
		r.replayDirectPublish(&rec)
	case modeMemoRejected, modeMemoized:
		d.pubTotal.Add(1)
		d.pubHits.Add(1)
		m.publishMemoized.Inc()
		if rec.Published {
			m.wsiMemoized.Inc()
		}
	}
	if !rec.Published {
		return nil, nil
	}
	if len(rec.Tests) != len(r.clients) {
		return nil, fmt.Errorf("campaign: journal record %s: %d client tests, roster has %d", rec.Trace, len(rec.Tests), len(r.clients))
	}
	memoed := memoRouted(&rec)
	st := &svcState{
		svc: PublishedService{
			Server:    rec.Server,
			Class:     rec.Class,
			Doc:       rec.Doc,
			Flagged:   rec.Flagged,
			Compliant: rec.Compliant,
			Profiles:  r.profileMask(rec.Profiles),
			analysis:  &sharedAnalysis{},
		},
		mode:     mode,
		verified: rec.Verified,
		codes:    make([]outcomeCode, len(r.clients)),
	}
	for ci := range rec.Tests {
		tr := rec.Tests[ci]
		if tr.Client != r.clients[ci].Name() {
			return nil, fmt.Errorf("campaign: journal record %s: test %d is for client %q, roster has %q", rec.Trace, ci, tr.Client, r.clients[ci].Name())
		}
		m.testTotal.Inc()
		if memoed {
			d.testTotal.Add(1)
			if tr.Ran {
				d.testRuns.Add(1)
			} else {
				m.testMemoized.Inc()
			}
		}
		if tr.Ran {
			m.genSeconds.Observe(0)
			m.genRuns.Inc()
			if tr.GenError {
				m.genErrors.Inc()
			}
			if tr.CompileRan {
				m.compileSeconds.Observe(0)
				m.compileRuns.Inc()
				if tr.CompileError {
					m.compileErrors.Inc()
				}
			}
		}
		st.codes[ci] = encodeRecord(tr)
	}
	return st, nil
}

// replayDirectPublish re-applies the publishDirect / buildShape
// metric contributions: a publish latency observation always, and the
// WS-I check when the document was published.
func (r *Runner) replayDirectPublish(rec *journal.Record) {
	m := r.met
	m.publishSeconds.Observe(0)
	if !rec.Published {
		m.publishRejected.Inc()
		return
	}
	m.wsiSeconds.Observe(0)
	m.wsiChecks.Inc()
	if rec.Flagged {
		m.wsiFlagged.Inc()
	}
}
