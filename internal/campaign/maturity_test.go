package campaign

import (
	"context"
	"testing"
)

// TestClientMaturityMatchesPaper reproduces the paper's §IV.A
// qualitative assessment at full scale: Metro, JBossWS, Apache CXF,
// gSOAP and .NET C# "appear to be quite mature as they fail almost
// only in presence of non WS-I compliant WSDL documents ... and these
// tools never produced code that later results in compilation errors
// or warnings"; the Axis tools and the VB/JScript back-ends do not
// meet that bar. Zend and suds lack the compilation step, so the
// criterion holds vacuously (the paper defers their assessment).
func TestClientMaturityMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign skipped in -short mode")
	}
	res, err := NewRunner(Config{}).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	wantMature := map[string]bool{
		"Metro":             true,
		"Apache Axis1":      false,
		"Apache Axis2":      false,
		"Apache CXF":        true,
		"JBossWS CXF":       true,
		".NET C#":           true,
		".NET Visual Basic": false,
		".NET JScript":      false,
		"gSOAP":             true,
		"Zend Framework":    true, // dynamic: no compilation step to fail
		"suds":              true, // dynamic: no compilation step to fail
	}
	for name, want := range wantMature {
		c := res.Clients[name]
		if c == nil {
			t.Fatalf("missing client summary %q", name)
		}
		if got := c.Mature(); got != want {
			t.Errorf("%s maturity = %v, want %v (%+v)", name, got, want, *c)
		}
	}

	// The five compiled mature tools fail almost only on flagged
	// documents — the exceptions are the WS-I-compliant-but-unusable
	// services (zero operations, s:any), which the paper calls out.
	for _, name := range []string{"Metro", "Apache CXF", "JBossWS CXF", ".NET C#", "gSOAP"} {
		c := res.Clients[name]
		if c.ErrorsOnClean > c.ErrorsOnFlagged {
			t.Errorf("%s: errors on clean (%d) exceed errors on flagged (%d)",
				name, c.ErrorsOnClean, c.ErrorsOnFlagged)
		}
	}

	// ~97% of generation errors involve flagged documents (§IV text).
	genErrOnFlagged := 0
	for _, name := range res.ClientOrder {
		genErrOnFlagged += res.Clients[name].ErrorsOnFlagged
	}
	// ErrorsOnFlagged also counts compile-step failures, but flagged
	// services rarely reach compilation; the dominant share must hold.
	if genErrOnFlagged < 250 {
		t.Errorf("errors involving flagged services = %d, implausibly low", genErrOnFlagged)
	}

	// The unflagged-but-failing population exists (the s:any family,
	// the throwables, the reserved-word and case-colliding classes) —
	// the paper's "among those that pass, some still present
	// interoperability issues".
	if res.UnflaggedFailingServices == 0 {
		t.Error("expected services that pass WS-I yet fail somewhere")
	}
	if res.FlaggedServices-res.FlaggedCleanServices != 82 {
		t.Errorf("flagged failing = %d, want 82",
			res.FlaggedServices-res.FlaggedCleanServices)
	}
}
