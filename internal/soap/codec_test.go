package soap

import (
	"errors"
	"strings"
	"testing"
)

const (
	sample12Envelope = `<?xml version="1.0" encoding="UTF-8"?>
<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
  <env:Body>
    <m:echoString xmlns:m="urn:example">
      <m:input>hello</m:input>
    </m:echoString>
  </env:Body>
</env:Envelope>
`
	// A SOAP 1.1 envelope carrying a SOAP 1.2-namespace fault: the
	// Digikoppeling-style hybrid the version matrix measures.
	hybridFaultEnvelope = `<?xml version="1.0" encoding="UTF-8"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <env:Fault xmlns:env="http://www.w3.org/2003/05/soap-envelope">
      <env:Code><env:Value>env:Sender</env:Value></env:Code>
      <env:Reason><env:Text xml:lang="en">boom</env:Text></env:Reason>
    </env:Fault>
  </soap:Body>
</soap:Envelope>
`
	// A 1.1-namespace Fault element whose children use the 1.2
	// Code/Reason shape — the other hybrid fault variant.
	hybridShapeEnvelope = `<?xml version="1.0" encoding="UTF-8"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <soap:Fault>
      <soap:Code><soap:Value>env:Receiver</soap:Value></soap:Code>
      <soap:Reason><soap:Text>kaput</soap:Text></soap:Reason>
    </soap:Fault>
  </soap:Body>
</soap:Envelope>
`
)

// TestUnmarshalRejectsForeignEnvelopeNamespace is the regression test
// for the silent-mishandle bug in the historical parser: a SOAP 1.2
// envelope (or 1.2 machinery inside a 1.1 envelope) must surface as a
// typed, version-labeled DecodeError, never as data.
func TestUnmarshalRejectsForeignEnvelopeNamespace(t *testing.T) {
	cases := []struct {
		name string
		data string
		want Version
	}{
		{"v12 envelope to v11 codec", sample12Envelope, Version12},
		{"v12 fault inside v11 envelope", hybridFaultEnvelope, VersionHybrid},
		{"v12 fault shape in v11 namespace", hybridShapeEnvelope, VersionHybrid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Unmarshal([]byte(tc.data))
			if err == nil {
				t.Fatalf("Unmarshal accepted foreign-version content as message %+v", m)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error is %T (%v), want *DecodeError", err, err)
			}
			if de.Version != tc.want {
				t.Fatalf("DecodeError.Version = %v, want %v", de.Version, tc.want)
			}
		})
	}
}

func TestV12RoundTrip(t *testing.T) {
	msg := testMessage()
	data, err := V12.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), NamespaceEnvelope12) {
		t.Fatalf("1.2 envelope missing its namespace:\n%s", data)
	}
	got, err := V12.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Local != msg.Local || got.Namespace != msg.Namespace {
		t.Fatalf("round trip wrapper mismatch: %+v", got)
	}
	for k, v := range msg.Fields {
		if got.Fields[k] != v {
			t.Fatalf("field %q = %q, want %q", k, got.Fields[k], v)
		}
	}
}

func TestV12FaultRoundTrip(t *testing.T) {
	f := &Fault{Code: Fault12Sender, String: "bad request", Actor: "urn:node", Detail: "d"}
	data, err := V12.MarshalFault(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = V12.Unmarshal(data)
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatalf("error is %T (%v), want *Fault", err, err)
	}
	if *got != *f {
		t.Fatalf("fault round trip = %+v, want %+v", got, f)
	}
}

func TestCodecsRejectEachOther(t *testing.T) {
	data11, err := V11.Marshal(testMessage())
	if err != nil {
		t.Fatal(err)
	}
	_, err = V12.Unmarshal(data11)
	var de *DecodeError
	if !errors.As(err, &de) || de.Version != Version11 {
		t.Fatalf("V12.Unmarshal(v11 envelope) = %v, want version-labeled DecodeError", err)
	}
}

func TestDetect(t *testing.T) {
	data11, err := V11.Marshal(testMessage())
	if err != nil {
		t.Fatal(err)
	}
	fault11, err := V11.MarshalFault(&Fault{Code: FaultClient, String: "x"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		data        string
		contentType string
		want        Version
	}{
		{"pure v11", string(data11), ContentType, Version11},
		{"pure v11 fault", string(fault11), ContentType, Version11},
		{"pure v12", sample12Envelope, ContentType12, Version12},
		{"v11 bytes, v12 media type", string(data11), ContentType12, VersionHybrid},
		{"v12 bytes, v11 media type", sample12Envelope, ContentType, VersionHybrid},
		{"v11 envelope, v12 fault", hybridFaultEnvelope, ContentType, VersionHybrid},
		{"v11 envelope, v12 fault shape", hybridShapeEnvelope, "", VersionHybrid},
		{"neutral media type stays pure", string(data11), "application/octet-stream", Version11},
		{"not xml", "hello", ContentType, VersionUnknown},
		{"not an envelope", "<html><body>oops</body></html>", ContentType, VersionUnknown},
		{"foreign envelope namespace", `<Envelope xmlns="urn:other"><Body/></Envelope>`, "", VersionUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Detect([]byte(tc.data), tc.contentType); got != tc.want {
				t.Fatalf("Detect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestUnmarshalFlexible(t *testing.T) {
	// Hybrid fault parses as a fault, in either hybrid variant.
	for _, data := range []string{hybridFaultEnvelope, hybridShapeEnvelope} {
		_, err := UnmarshalFlexible([]byte(data))
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("UnmarshalFlexible(hybrid fault) = %v, want *Fault", err)
		}
		if f.Code == "" || f.String == "" {
			t.Fatalf("fault fields not mapped from 1.2 shape: %+v", f)
		}
	}
	// Pure envelopes of both versions parse as messages.
	data11, err := V11.Marshal(testMessage())
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range []string{string(data11), sample12Envelope} {
		if _, err := UnmarshalFlexible([]byte(data)); err != nil {
			t.Fatalf("UnmarshalFlexible(pure envelope) = %v", err)
		}
	}
}

func TestUnmarshalCoerce(t *testing.T) {
	// A 1.2 fault parses as a *successful* message named Fault — the
	// silent mishandling the coerce model exists to reproduce.
	data12, err := V12.MarshalFault(&Fault{Code: Fault12Sender, String: "x"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalCoerce(data12)
	if err != nil {
		t.Fatalf("UnmarshalCoerce(v12 fault) = %v, want silent success", err)
	}
	if m.Local != "Fault" {
		t.Fatalf("coerced payload = %+v, want Local=Fault", m)
	}
	// The native 1.1 fault shape is still recognized.
	data11, err := V11.MarshalFault(&Fault{Code: FaultClient, String: "x"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalCoerce(data11)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("UnmarshalCoerce(v11 fault) = %v, want *Fault", err)
	}
	// And a 1.2 message is consumed without complaint.
	if _, err := UnmarshalCoerce([]byte(sample12Envelope)); err != nil {
		t.Fatalf("UnmarshalCoerce(v12 message) = %v", err)
	}
}

func TestFaultCodeMapping(t *testing.T) {
	if got := V12.FaultCode(FaultClient); got != Fault12Sender {
		t.Fatalf("V12.FaultCode(Client) = %q", got)
	}
	if got := V12.FaultCode(FaultServer); got != Fault12Receiver {
		t.Fatalf("V12.FaultCode(Server) = %q", got)
	}
	if got := V12.FaultCode(FaultVersionMismatch); got != Fault12VersionMismatch {
		t.Fatalf("V12.FaultCode(VersionMismatch) = %q", got)
	}
	if got := V11.FaultCode(FaultClient); got != FaultClient {
		t.Fatalf("V11.FaultCode(Client) = %q", got)
	}
}

func TestContentTypeRendering(t *testing.T) {
	if got := V11.ContentType("urn:x#op"); got != ContentType {
		t.Fatalf("V11.ContentType = %q", got)
	}
	got := V12.ContentType("urn:x#op")
	if !strings.HasPrefix(got, ContentType12) || !strings.Contains(got, `action="urn:x#op"`) {
		t.Fatalf("V12.ContentType = %q", got)
	}
	if got := V12.ContentType(""); got != ContentType12 {
		t.Fatalf("V12.ContentType(\"\") = %q", got)
	}
}

func TestCodecFor(t *testing.T) {
	if c, ok := CodecFor(Version11); !ok || c.Version() != Version11 {
		t.Fatal("CodecFor(Version11)")
	}
	if c, ok := CodecFor(Version12); !ok || c.Version() != Version12 {
		t.Fatal("CodecFor(Version12)")
	}
	if _, ok := CodecFor(VersionHybrid); ok {
		t.Fatal("CodecFor(VersionHybrid) must not resolve")
	}
	if _, ok := CodecFor(VersionUnknown); ok {
		t.Fatal("CodecFor(VersionUnknown) must not resolve")
	}
}
