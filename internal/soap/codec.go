// Codec API: the version-parameterized envelope layer.
//
// The paper's campaign only ever exercised SOAP 1.1, but the dominant
// real-world interoperability failure today is *version-hybrid*
// traffic — 1.1 envelopes carrying 1.2-era framing or fault shapes
// (the Digikoppeling WUS incident that forced a patched CXF). This
// file makes the envelope version a first-class parameter: a Codec
// interface with V11 and V12 implementations, a Detect classifier
// that labels raw bytes v11/v12/hybrid/unknown, and two deliberately
// less-strict parsers (UnmarshalFlexible, UnmarshalCoerce) that model
// how lenient and namespace-blind frameworks consume such traffic.
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"mime"
	"sort"
)

// NamespaceEnvelope12 is the SOAP 1.2 envelope namespace.
const NamespaceEnvelope12 = "http://www.w3.org/2003/05/soap-envelope"

// ContentType12 is the SOAP 1.2 HTTP media type (without the action
// parameter; Codec.ContentType renders the full header value).
const ContentType12 = "application/soap+xml; charset=utf-8"

// Fault codes beyond the basic client/server pair.
const (
	// FaultVersionMismatch is the SOAP 1.1 VersionMismatch fault code,
	// raised when a node receives an envelope in a namespace it does
	// not speak.
	FaultVersionMismatch = "soap:VersionMismatch"
	// Fault12Sender, Fault12Receiver and Fault12VersionMismatch are the
	// SOAP 1.2 equivalents of the 1.1 Client/Server/VersionMismatch
	// codes (env:Code/env:Value values).
	Fault12Sender          = "env:Sender"
	Fault12Receiver        = "env:Receiver"
	Fault12VersionMismatch = "env:VersionMismatch"
)

// Version identifies the SOAP envelope version of a message, as
// labeled by Detect or required by a Codec.
type Version int

const (
	// VersionUnknown: not recognizably a SOAP envelope.
	VersionUnknown Version = iota
	// Version11: coherent SOAP 1.1 signals only.
	Version11
	// Version12: coherent SOAP 1.2 signals only.
	Version12
	// VersionHybrid: signals from both versions in one message — the
	// traffic class mainstream frameworks disagree on the hardest.
	VersionHybrid
)

// String renders the version label used in reports and fingerprints.
func (v Version) String() string {
	switch v {
	case Version11:
		return "v11"
	case Version12:
		return "v12"
	case VersionHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Strictness models how a framework treats traffic whose envelope
// version disagrees with the version it was configured to speak. The
// three levels are sourced from the real stacks' documented behavior;
// internal/framework declares one per model.
type Strictness int

const (
	// StrictReject refuses mismatched traffic with a typed error or a
	// VersionMismatch fault (JAX-WS/Metro, CXF, WCF, gSOAP).
	StrictReject Strictness = iota
	// LenientAccept auto-detects the version per message and processes
	// either, answering in its own configured version (Axis 1.x/2,
	// PHP ext/soap).
	LenientAccept
	// SilentCoerce parses namespace-blind and presses on regardless
	// (ASMX-era .NET clients, suds) — the behavior class that turns
	// hybrid traffic into silent mishandling.
	SilentCoerce
)

// String renders the strictness label used in reports and
// fingerprints.
func (s Strictness) String() string {
	switch s {
	case LenientAccept:
		return "lenient-accept"
	case SilentCoerce:
		return "silent-coerce"
	default:
		return "strict-reject"
	}
}

// Codec serializes and parses one SOAP envelope version. The two
// implementations, V11 and V12, are stateless and safe for concurrent
// use.
type Codec interface {
	// Version labels the codec.
	Version() Version
	// Namespace is the envelope namespace the codec emits and requires.
	Namespace() string
	// ContentType renders the HTTP Content-Type header value for a
	// message carrying the given action. SOAP 1.1 ignores the action
	// (it rides in the SOAPAction header); SOAP 1.2 embeds it as the
	// media-type action parameter.
	ContentType(action string) string
	// UsesActionHeader reports whether the binding carries the action
	// in a SOAPAction HTTP header (1.1) or inside Content-Type (1.2).
	UsesActionHeader() bool
	// FaultCode maps the canonical 1.1 fault vocabulary (soap:Client,
	// soap:Server, soap:VersionMismatch) onto this version's codes.
	// Unrecognized values pass through unchanged.
	FaultCode(code string) string
	// EnvelopeClose is the serialized envelope closing tag, for wire
	// middleware that splices content ahead of it.
	EnvelopeClose() string
	// Marshal serializes a message into an envelope of this version.
	Marshal(m *Message) ([]byte, error)
	// MarshalFault serializes a fault envelope of this version.
	MarshalFault(f *Fault) ([]byte, error)
	// Unmarshal strictly parses an envelope of this version. Content in
	// the other version's namespace — or hybrid content mixing the two
	// — is rejected with a version-labeled *DecodeError. A well-formed
	// fault is returned as a *Fault error.
	Unmarshal(data []byte) (*Message, error)
}

// V11 and V12 are the two codec implementations.
var (
	V11 Codec = v11Codec{}
	V12 Codec = v12Codec{}
)

// CodecFor maps a pure version label to its codec. Hybrid and unknown
// have no codec: nothing can faithfully emit them.
func CodecFor(v Version) (Codec, bool) {
	switch v {
	case Version11:
		return V11, true
	case Version12:
		return V12, true
	default:
		return nil, false
	}
}

// marshalMessage is the shared envelope writer; prefix/ns select the
// version. The 1.1 output is byte-identical to the historical
// package-level Marshal. Children are written in sorted field order
// so output is deterministic, and every name must be a valid NCName:
// values are escaped, but names are structural markup and cannot be.
func marshalMessage(prefix, ns string, m *Message) ([]byte, error) {
	if m.Local == "" {
		return nil, errors.New("soap: message has no wrapper element name")
	}
	if !ValidNCName(m.Local) {
		return nil, fmt.Errorf("soap: wrapper name %q is not a valid XML NCName", m.Local)
	}
	for name := range m.Fields {
		if !ValidNCName(name) {
			return nil, fmt.Errorf("soap: field name %q is not a valid XML NCName", name)
		}
	}
	buf := envelopeBufs.Get().(*bytes.Buffer)
	defer envelopeBufs.Put(buf)
	buf.Reset()
	buf.WriteString(xml.Header)
	buf.WriteString(`<` + prefix + `:Envelope xmlns:` + prefix + `="` + ns + `">` + "\n")
	buf.WriteString("  <" + prefix + ":Body>\n")
	fmt.Fprintf(buf, "    <m:%s xmlns:m=%q>\n", m.Local, m.Namespace)

	names := make([]string, 0, len(m.Fields))
	for k := range m.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(buf, "      <m:%s>%s</m:%s>\n", name, escape(m.Fields[name]), name)
	}

	fmt.Fprintf(buf, "    </m:%s>\n", m.Local)
	buf.WriteString("  </" + prefix + ":Body>\n")
	buf.WriteString("</" + prefix + ":Envelope>\n")
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// v11Codec implements the SOAP 1.1 binding: schemas.xmlsoap.org
// envelope, text/xml + SOAPAction framing, faultcode/faultstring
// faults.
type v11Codec struct{}

func (v11Codec) Version() Version          { return Version11 }
func (v11Codec) Namespace() string         { return NamespaceEnvelope }
func (v11Codec) ContentType(string) string { return ContentType }
func (v11Codec) UsesActionHeader() bool    { return true }
func (v11Codec) FaultCode(code string) string {
	return code
}
func (v11Codec) EnvelopeClose() string { return "</soap:Envelope>" }

func (v11Codec) Marshal(m *Message) ([]byte, error) {
	return marshalMessage("soap", NamespaceEnvelope, m)
}

func (v11Codec) MarshalFault(f *Fault) ([]byte, error) {
	buf := envelopeBufs.Get().(*bytes.Buffer)
	defer envelopeBufs.Put(buf)
	buf.Reset()
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + NamespaceEnvelope + `">` + "\n")
	buf.WriteString("  <soap:Body>\n")
	buf.WriteString("    <soap:Fault>\n")
	fmt.Fprintf(buf, "      <faultcode>%s</faultcode>\n", escape(f.Code))
	fmt.Fprintf(buf, "      <faultstring>%s</faultstring>\n", escape(f.String))
	if f.Actor != "" {
		fmt.Fprintf(buf, "      <faultactor>%s</faultactor>\n", escape(f.Actor))
	}
	if f.Detail != "" {
		fmt.Fprintf(buf, "      <detail>%s</detail>\n", escape(f.Detail))
	}
	buf.WriteString("    </soap:Fault>\n")
	buf.WriteString("  </soap:Body>\n")
	buf.WriteString("</soap:Envelope>\n")
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// envelope is the 1.1 parse-side wire structure.
type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    struct {
		Fault   *Fault  `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
		Payload payload `xml:",any"`
	} `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type payload struct {
	XMLName  xml.Name
	Children []child `xml:",any"`
}

type child struct {
	XMLName xml.Name
	Value   string `xml:",chardata"`
}

func (v11Codec) Unmarshal(data []byte) (*Message, error) {
	// Version gate first. encoding/xml enforces the root namespace but
	// is silently lenient about nested machinery: a 1.2-namespace Fault
	// inside a 1.1 envelope lands in the ",any" payload field and used
	// to parse as a *successful* message with Local="Fault" — exactly
	// the silent-mishandle class the version matrix measures.
	switch dv := Detect(data, ""); dv {
	case Version12, VersionHybrid:
		return nil, &DecodeError{
			Reason:  "envelope is not pure SOAP 1.1 (detected " + dv.String() + ")",
			Version: dv,
		}
	}
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, &DecodeError{Reason: "malformed envelope", Err: err}
	}
	if env.Body.Fault != nil {
		return nil, env.Body.Fault
	}
	return messageFromPayload(env.Body.Payload)
}

// messageFromPayload converts a parsed wrapper into a Message,
// rejecting duplicate children with a DecodeError: Message carries
// one value per field name, and silently keeping the last occurrence
// would let a corrupted (or attacker-duplicated) envelope masquerade
// as a clean one. Payload elements living in either SOAP envelope
// namespace are envelope machinery, never application data.
func messageFromPayload(p payload) (*Message, error) {
	if p.XMLName.Local == "" {
		return nil, &DecodeError{Reason: "no payload", Err: ErrNoBody}
	}
	if p.XMLName.Space == NamespaceEnvelope || p.XMLName.Space == NamespaceEnvelope12 {
		return nil, &DecodeError{
			Reason:  fmt.Sprintf("payload element %q lives in a SOAP envelope namespace", p.XMLName.Local),
			Version: VersionHybrid,
		}
	}
	m := &Message{
		Namespace: p.XMLName.Space,
		Local:     p.XMLName.Local,
		Fields:    make(map[string]string, len(p.Children)),
	}
	for _, c := range p.Children {
		if _, dup := m.Fields[c.XMLName.Local]; dup {
			return nil, &DecodeError{Reason: fmt.Sprintf("duplicate payload element %q", c.XMLName.Local)}
		}
		m.Fields[c.XMLName.Local] = c.Value
	}
	return m, nil
}

// v12Codec implements the SOAP 1.2 binding: the 2003/05 envelope,
// application/soap+xml with an action media-type parameter, and
// env:Code/env:Reason faults.
type v12Codec struct{}

func (v12Codec) Version() Version  { return Version12 }
func (v12Codec) Namespace() string { return NamespaceEnvelope12 }
func (v12Codec) ContentType(action string) string {
	if action == "" {
		return ContentType12
	}
	return ContentType12 + fmt.Sprintf("; action=%q", action)
}
func (v12Codec) UsesActionHeader() bool { return false }
func (v12Codec) FaultCode(code string) string {
	switch code {
	case FaultClient:
		return Fault12Sender
	case FaultServer:
		return Fault12Receiver
	case FaultVersionMismatch:
		return Fault12VersionMismatch
	}
	return code
}
func (v12Codec) EnvelopeClose() string { return "</env:Envelope>" }

func (v12Codec) Marshal(m *Message) ([]byte, error) {
	return marshalMessage("env", NamespaceEnvelope12, m)
}

func (v12Codec) MarshalFault(f *Fault) ([]byte, error) {
	buf := envelopeBufs.Get().(*bytes.Buffer)
	defer envelopeBufs.Put(buf)
	buf.Reset()
	buf.WriteString(xml.Header)
	buf.WriteString(`<env:Envelope xmlns:env="` + NamespaceEnvelope12 + `">` + "\n")
	buf.WriteString("  <env:Body>\n")
	buf.WriteString("    <env:Fault>\n")
	buf.WriteString("      <env:Code>\n")
	fmt.Fprintf(buf, "        <env:Value>%s</env:Value>\n", escape(f.Code))
	buf.WriteString("      </env:Code>\n")
	buf.WriteString("      <env:Reason>\n")
	fmt.Fprintf(buf, "        <env:Text xml:lang=\"en\">%s</env:Text>\n", escape(f.String))
	buf.WriteString("      </env:Reason>\n")
	if f.Actor != "" {
		fmt.Fprintf(buf, "      <env:Node>%s</env:Node>\n", escape(f.Actor))
	}
	if f.Detail != "" {
		fmt.Fprintf(buf, "      <env:Detail>%s</env:Detail>\n", escape(f.Detail))
	}
	buf.WriteString("    </env:Fault>\n")
	buf.WriteString("  </env:Body>\n")
	buf.WriteString("</env:Envelope>\n")
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// envelope12 is the 1.2 parse-side wire structure.
type envelope12 struct {
	XMLName xml.Name `xml:"http://www.w3.org/2003/05/soap-envelope Envelope"`
	Body    struct {
		Fault   *fault12 `xml:"http://www.w3.org/2003/05/soap-envelope Fault"`
		Payload payload  `xml:",any"`
	} `xml:"http://www.w3.org/2003/05/soap-envelope Body"`
}

type fault12 struct {
	Code struct {
		Value string `xml:"http://www.w3.org/2003/05/soap-envelope Value"`
	} `xml:"http://www.w3.org/2003/05/soap-envelope Code"`
	Reason struct {
		Text string `xml:"http://www.w3.org/2003/05/soap-envelope Text"`
	} `xml:"http://www.w3.org/2003/05/soap-envelope Reason"`
	Node   string `xml:"http://www.w3.org/2003/05/soap-envelope Node"`
	Detail string `xml:"http://www.w3.org/2003/05/soap-envelope Detail"`
}

func (f *fault12) fault() *Fault {
	return &Fault{
		Code:   f.Code.Value,
		String: f.Reason.Text,
		Actor:  f.Node,
		Detail: f.Detail,
	}
}

func (v12Codec) Unmarshal(data []byte) (*Message, error) {
	switch dv := Detect(data, ""); dv {
	case Version11, VersionHybrid:
		return nil, &DecodeError{
			Reason:  "envelope is not pure SOAP 1.2 (detected " + dv.String() + ")",
			Version: dv,
		}
	}
	var env envelope12
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, &DecodeError{Reason: "malformed envelope", Err: err}
	}
	if env.Body.Fault != nil {
		return nil, env.Body.Fault.fault()
	}
	return messageFromPayload(env.Body.Payload)
}

// versionSignals is the evidence Detect collects from one message.
type versionSignals struct {
	envelope bool   // root element is an Envelope
	rootNS   string // root element namespace
	fault11  bool   // fault markup in 1.1 shape (faultcode/faultstring)
	fault12  bool   // fault markup in 1.2 shape or namespace (Code/Reason)
}

// scanSignals token-walks a message collecting version evidence. The
// walk is independent of the strict parsers on purpose: it must keep
// working on exactly the hybrid messages they reject.
func scanSignals(data []byte) versionSignals {
	var sig versionSignals
	dec := xml.NewDecoder(bytes.NewReader(data))
	depth := 0
	inBody := false
	faultDepth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return sig
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch {
			case depth == 1:
				if t.Name.Local != "Envelope" {
					return sig
				}
				sig.envelope = true
				sig.rootNS = t.Name.Space
			case depth == 2:
				inBody = t.Name.Local == "Body"
			case depth == 3 && inBody && t.Name.Local == "Fault":
				switch t.Name.Space {
				case NamespaceEnvelope:
					faultDepth = depth
				case NamespaceEnvelope12:
					faultDepth = depth
					sig.fault12 = true
				}
			case faultDepth != 0 && depth == faultDepth+1:
				switch t.Name.Local {
				case "faultcode", "faultstring":
					if t.Name.Space == "" || t.Name.Space == NamespaceEnvelope {
						sig.fault11 = true
					}
				case "Code", "Reason":
					if t.Name.Space == NamespaceEnvelope || t.Name.Space == NamespaceEnvelope12 {
						sig.fault12 = true
					}
				}
			}
		case xml.EndElement:
			if faultDepth != 0 && depth == faultDepth {
				faultDepth = 0
			}
			if depth == 2 {
				inBody = false
			}
			depth--
		}
	}
}

// Detect classifies raw bytes (and, when available, the HTTP
// Content-Type they arrived under) as SOAP 1.1, SOAP 1.2, a hybrid of
// both, or not recognizably SOAP. The signals, each independently
// version-marking:
//
//   - envelope namespace (schemas.xmlsoap.org vs 2003/05)
//   - media type (text/xml vs application/soap+xml; others neutral)
//   - fault shape (faultcode/faultstring vs env:Code/env:Reason, and
//     the Fault element's own namespace)
//
// A message whose signals agree is labeled with that version; mixed
// signals are VersionHybrid; a root that is not an Envelope in either
// namespace is VersionUnknown. Pass contentType "" to classify bytes
// alone.
func Detect(data []byte, contentType string) Version {
	sig := scanSignals(data)
	if !sig.envelope {
		return VersionUnknown
	}
	var sees11, sees12 bool
	switch sig.rootNS {
	case NamespaceEnvelope:
		sees11 = true
	case NamespaceEnvelope12:
		sees12 = true
	default:
		return VersionUnknown
	}
	if contentType != "" {
		if mediaType, _, err := mime.ParseMediaType(contentType); err == nil {
			switch mediaType {
			case "text/xml":
				sees11 = true
			case "application/soap+xml":
				sees12 = true
			}
		}
	}
	if sig.fault11 {
		sees11 = true
	}
	if sig.fault12 {
		sees12 = true
	}
	switch {
	case sees11 && sees12:
		return VersionHybrid
	case sees12:
		return Version12
	default:
		return Version11
	}
}

// envNode is one element in the minimal tree the lenient parsers walk.
type envNode struct {
	name xml.Name
	text string
	kids []*envNode
}

func (n *envNode) kid(local string) *envNode {
	for _, k := range n.kids {
		if k.name.Local == local {
			return k
		}
	}
	return nil
}

// parseTree builds an element tree from one XML document. Depth is
// bounded: the echo wire format is four levels deep, so anything
// approaching the cap is hostile input, not SOAP.
func parseTree(data []byte) (*envNode, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var root *envNode
	var stack []*envNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= 32 {
				return nil, errors.New("document nested too deeply")
			}
			n := &envNode{name: t.Name}
			if len(stack) == 0 {
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.kids = append(parent.kids, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text += string(t)
			}
		}
	}
	if root == nil {
		return nil, errors.New("no document element")
	}
	return root, nil
}

// envelopeBody locates the Body child of a parsed envelope tree and
// returns its first element child (the payload or fault), enforcing
// only local-name structure so it works on any namespace mix.
func envelopeBody(data []byte) (*envNode, error) {
	root, err := parseTree(data)
	if err != nil {
		return nil, &DecodeError{Reason: "malformed envelope", Err: err}
	}
	if root.name.Local != "Envelope" {
		return nil, &DecodeError{Reason: fmt.Sprintf("document element %q is not an Envelope", root.name.Local)}
	}
	body := root.kid("Body")
	if body == nil || len(body.kids) == 0 {
		return nil, &DecodeError{Reason: "no payload", Err: ErrNoBody}
	}
	return body.kids[0], nil
}

// messageFromNode converts a payload subtree into a Message, keeping
// the duplicate-child rejection rule of the strict parsers.
func messageFromNode(n *envNode) (*Message, error) {
	m := &Message{
		Namespace: n.name.Space,
		Local:     n.name.Local,
		Fields:    make(map[string]string, len(n.kids)),
	}
	for _, k := range n.kids {
		if _, dup := m.Fields[k.name.Local]; dup {
			return nil, &DecodeError{Reason: fmt.Sprintf("duplicate payload element %q", k.name.Local)}
		}
		m.Fields[k.name.Local] = k.text
	}
	return m, nil
}

// UnmarshalFlexible parses an envelope in either version, including
// hybrids, recognizing fault markup in both shapes. This models the
// lenient-accept frameworks (Axis, PHP): they never mistake a fault
// for data, but they also never refuse a version mix.
func UnmarshalFlexible(data []byte) (*Message, error) {
	switch Detect(data, "") {
	case Version11:
		return V11.Unmarshal(data)
	case Version12:
		return V12.Unmarshal(data)
	case VersionUnknown:
		// Not an envelope in either namespace; reuse the 1.1 parser for
		// its diagnostics.
		return V11.Unmarshal(data)
	}
	// Hybrid: neither strict parser will touch it, so walk the tree by
	// hand, honoring envelope machinery from both versions.
	first, err := envelopeBody(data)
	if err != nil {
		return nil, err
	}
	if first.name.Local == "Fault" &&
		(first.name.Space == NamespaceEnvelope || first.name.Space == NamespaceEnvelope12) {
		f := &Fault{}
		for _, k := range first.kids {
			switch k.name.Local {
			case "faultcode":
				f.Code = k.text
			case "faultstring":
				f.String = k.text
			case "faultactor", "Node":
				f.Actor = k.text
			case "detail", "Detail":
				f.Detail = k.text
			case "Code":
				if v := k.kid("Value"); v != nil {
					f.Code = v.text
				}
			case "Reason":
				if v := k.kid("Text"); v != nil {
					f.String = v.text
				}
			}
		}
		return nil, f
	}
	return messageFromNode(first)
}

// UnmarshalCoerce parses namespace-blind: any root named Envelope is
// accepted and only the native 1.1 faultcode shape is recognized as a
// fault. This models the silent-coerce frameworks (ASMX-era .NET,
// suds): a 1.2-shaped fault parses as a *successful* message with
// Local="Fault" — the silent mishandling the version matrix exists to
// expose.
func UnmarshalCoerce(data []byte) (*Message, error) {
	first, err := envelopeBody(data)
	if err != nil {
		return nil, err
	}
	if first.name.Local == "Fault" && first.kid("faultcode") != nil {
		f := &Fault{Code: first.kid("faultcode").text}
		if s := first.kid("faultstring"); s != nil {
			f.String = s.text
		}
		if a := first.kid("faultactor"); a != nil {
			f.Actor = a.text
		}
		if d := first.kid("detail"); d != nil {
			f.Detail = d.text
		}
		return nil, f
	}
	return messageFromNode(first)
}
