package soap

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testMessage() *Message {
	return &Message{
		Namespace: "http://svc.test/",
		Local:     "echo",
		Fields: map[string]string{
			"input": "hello",
			"count": "3",
		},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := testMessage()
	data, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a, err := Marshal(testMessage())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(testMessage())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("marshal is not deterministic (field ordering)")
	}
}

func TestMarshalRejectsAnonymous(t *testing.T) {
	if _, err := Marshal(&Message{Namespace: "urn:x"}); err == nil {
		t.Error("expected error for missing wrapper name")
	}
}

func TestMarshalRejectsHostileNames(t *testing.T) {
	hostile := []string{
		"", " ", "1leading", "-dash", ".dot", "a b",
		"a><b", "a/><x", "a\"", "a&b", "name>inject</name><evil",
		"ns:qualified", "tab\tname", "new\nline",
	}
	for _, name := range hostile {
		if _, err := Marshal(&Message{Namespace: "urn:x", Local: "echo",
			Fields: map[string]string{name: "v"}}); err == nil {
			t.Errorf("field name %q accepted; markup injection possible", name)
		}
		if name == "" {
			continue // covered by TestMarshalRejectsAnonymous
		}
		if _, err := Marshal(&Message{Namespace: "urn:x", Local: name}); err == nil {
			t.Errorf("wrapper name %q accepted; markup injection possible", name)
		}
	}
}

func TestValidNCName(t *testing.T) {
	for _, ok := range []string{"a", "_x", "input", "Foo-bar.baz_2", "éléphant", "字段"} {
		if !ValidNCName(ok) {
			t.Errorf("ValidNCName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9a", "-a", ".a", "a b", "a:b", "a<b", "a>b", "a&b", `a"b`} {
		if ValidNCName(bad) {
			t.Errorf("ValidNCName(%q) = true, want false", bad)
		}
	}
}

func TestUnmarshalRejectsDuplicateChildren(t *testing.T) {
	doc := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <m:echo xmlns:m="urn:x">
      <m:input>first</m:input>
      <m:input>second</m:input>
    </m:echo>
  </soap:Body>
</soap:Envelope>`
	var de *DecodeError
	_, err := Unmarshal([]byte(doc))
	if !errors.As(err, &de) {
		t.Fatalf("duplicate children accepted (last-wins would mask corruption), got %v", err)
	}
	if !strings.Contains(de.Reason, "duplicate") {
		t.Errorf("reason = %q, want a duplicate-element rejection", de.Reason)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := &Fault{Code: FaultClient, String: "bad request", Detail: "missing element"}
	data, err := MarshalFault(f)
	if err != nil {
		t.Fatalf("MarshalFault: %v", err)
	}
	_, err = Unmarshal(data)
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatalf("expected *Fault error, got %v", err)
	}
	if got.Code != f.Code || got.String != f.String || got.Detail != f.Detail {
		t.Errorf("fault mismatch: %+v vs %+v", got, f)
	}
	if !strings.Contains(got.Error(), "bad request") {
		t.Errorf("fault error string %q", got.Error())
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var de *DecodeError
	if _, err := Unmarshal([]byte("nope")); !errors.As(err, &de) {
		t.Errorf("expected DecodeError, got %v", err)
	}
}

func TestUnmarshalEmptyBody(t *testing.T) {
	doc := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>`
	_, err := Unmarshal([]byte(doc))
	if !errors.Is(err, ErrNoBody) {
		t.Errorf("expected ErrNoBody, got %v", err)
	}
}

func TestFieldLookup(t *testing.T) {
	m := testMessage()
	if v, ok := m.Field("input"); !ok || v != "hello" {
		t.Errorf("Field(input) = %q, %v", v, ok)
	}
	if _, ok := m.Field("missing"); ok {
		t.Error("Field(missing) should not be found")
	}
}

// TestRoundTripProperty: any field map with NCName-safe keys survives
// the envelope round trip, including XML-hostile values.
func TestRoundTripProperty(t *testing.T) {
	names := []string{"input", "value", "count", "payload", "flag"}
	f := func(vals []string) bool {
		m := &Message{Namespace: "http://p.test/", Local: "echo", Fields: map[string]string{}}
		for i, v := range vals {
			if i >= len(names) {
				break
			}
			if strings.ContainsAny(v, "\x00\v\f") || !isValidXMLText(v) {
				return true // XML cannot carry these code points; skip
			}
			m.Fields[names[i]] = v
		}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// isValidXMLText reports whether every rune is legal XML 1.0 CharData.
func isValidXMLText(s string) bool {
	for _, r := range s {
		ok := r == 0x9 || r == 0xA || r == 0xD ||
			(r >= 0x20 && r <= 0xD7FF) ||
			(r >= 0xE000 && r <= 0xFFFD) ||
			(r >= 0x10000 && r <= 0x10FFFF)
		if !ok {
			return false
		}
	}
	return true
}
