package soap

import "testing"

// fuzzSeeds collects the corpus shared by the codec fuzzers: canonical
// envelopes of both versions, faults of both shapes, and the hybrid
// variants the version matrix measures (a 1.1 envelope carrying a
// 1.2-shaped fault; a 1.2 envelope framed with 1.1-era headers is a
// transport-level hybrid, so its bytes are a pure 1.2 seed here).
func fuzzSeeds(f *testing.F) {
	f.Helper()
	seed, err := V11.Marshal(testMessage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	fault, err := V11.MarshalFault(&Fault{Code: FaultClient, String: "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fault)
	seed12, err := V12.Marshal(testMessage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed12)
	fault12, err := V12.MarshalFault(&Fault{Code: Fault12Sender, String: "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fault12)
	f.Add([]byte(``))
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>`))
	f.Add([]byte(`<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope"><env:Body/></env:Envelope>`))
	// Hostile payload shapes: duplicated children (must be rejected,
	// not last-wins) and element names Marshal must refuse to re-emit.
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><m:echo xmlns:m="urn:x"><m:input>a</m:input><m:input>b</m:input></m:echo></soap:Body></soap:Envelope>`))
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><m:echo xmlns:m="urn:x"><m:a.-_9>v</m:a.-_9></m:echo></soap:Body></soap:Envelope>`))
	// Hybrid seeds: 1.1 envelope + 1.2 fault machinery, in both the
	// foreign-namespace and foreign-shape variants.
	f.Add([]byte(hybridFaultEnvelope))
	f.Add([]byte(hybridShapeEnvelope))
	// SOAP machinery masquerading as payload.
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><env:Fault xmlns:env="http://www.w3.org/2003/05/soap-envelope"><env:Code/></env:Fault></soap:Body></soap:Envelope>`))
}

// FuzzUnmarshal exercises the strict 1.1 parser with arbitrary bytes:
// no panics, and any accepted message must re-marshal and re-parse.
func FuzzUnmarshal(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			// Messages with wrapper names that are not serializable
			// (e.g. containing spaces) are rejected at marshal time.
			return
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("marshal output failed to reparse: %v\n%s", err, out)
		}
	})
}

// FuzzCodecs drives both strict codecs, the lenient parsers and the
// Detect classifier over one corpus, checking the cross-version
// invariants:
//
//   - no parser panics;
//   - each strict codec's accepted output round-trips through itself;
//   - a message accepted by a strict codec is never labeled the other
//     pure version by Detect;
//   - whatever V11 accepts, V12 rejects, and vice versa (the codecs
//     partition the pure inputs).
func FuzzCodecs(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		v := Detect(data, "")
		m11, err11 := V11.Unmarshal(data)
		m12, err12 := V12.Unmarshal(data)
		if err11 == nil && err12 == nil {
			t.Fatalf("both codecs accepted one message (detect=%v):\n%s", v, data)
		}
		if err11 == nil && v != Version11 {
			t.Fatalf("V11 accepted a message Detect labels %v:\n%s", v, data)
		}
		if err12 == nil && v != Version12 {
			t.Fatalf("V12 accepted a message Detect labels %v:\n%s", v, data)
		}
		for _, rt := range []struct {
			c Codec
			m *Message
		}{{V11, m11}, {V12, m12}} {
			if rt.m == nil {
				continue
			}
			out, err := rt.c.Marshal(rt.m)
			if err != nil {
				continue
			}
			if _, err := rt.c.Unmarshal(out); err != nil {
				t.Fatalf("%v marshal output failed to reparse: %v\n%s", rt.c.Version(), err, out)
			}
		}
		// The lenient parsers must not panic and must agree with the
		// strict parsers on pure accepted inputs.
		flexMsg, flexErr := UnmarshalFlexible(data)
		if _, err := UnmarshalCoerce(data); err != nil {
			_ = err
		}
		if err11 == nil && (flexErr != nil || flexMsg.Local != m11.Local) {
			t.Fatalf("flexible parser disagrees with V11 on pure input: %v", flexErr)
		}
		if err12 == nil && (flexErr != nil || flexMsg.Local != m12.Local) {
			t.Fatalf("flexible parser disagrees with V12 on pure input: %v", flexErr)
		}
	})
}

// FuzzDetect pins the classifier's stability: no panics, a stable
// result across repeated calls, and pure verdicts implying the strict
// codec of that version does not misfile the message as the *other*
// pure version.
func FuzzDetect(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		v := Detect(data, "")
		if v != Detect(data, "") {
			t.Fatal("Detect is not deterministic")
		}
		// A content-type signal may escalate a pure verdict to hybrid,
		// never flip it to the other pure version.
		withCT := Detect(data, ContentType12)
		if v == Version11 && withCT != VersionHybrid {
			t.Fatalf("v11 bytes + v12 media type = %v, want hybrid", withCT)
		}
		if v == Version12 && withCT != Version12 {
			t.Fatalf("v12 bytes + v12 media type = %v, want v12", withCT)
		}
	})
}
