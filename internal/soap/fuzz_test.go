package soap

import "testing"

// FuzzUnmarshal exercises the envelope parser with arbitrary bytes:
// no panics, and any accepted message must re-marshal and re-parse.
func FuzzUnmarshal(f *testing.F) {
	seed, err := Marshal(testMessage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	fault, err := MarshalFault(&Fault{Code: FaultClient, String: "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fault)
	f.Add([]byte(``))
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>`))
	// Hostile payload shapes: duplicated children (must be rejected,
	// not last-wins) and element names Marshal must refuse to re-emit.
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><m:echo xmlns:m="urn:x"><m:input>a</m:input><m:input>b</m:input></m:echo></soap:Body></soap:Envelope>`))
	f.Add([]byte(`<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><m:echo xmlns:m="urn:x"><m:a.-_9>v</m:a.-_9></m:echo></soap:Body></soap:Envelope>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			// Messages with wrapper names that are not serializable
			// (e.g. containing spaces) are rejected at marshal time.
			return
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("marshal output failed to reparse: %v\n%s", err, out)
		}
	})
}
