// Package soap implements a SOAP 1.1 envelope codec: building,
// serializing and parsing the request/response messages that client
// and server framework subsystems exchange during the Communication
// and Execution steps of the inter-operation lifecycle.
//
// The paper scopes those two steps out and announces them as future
// work; this package, together with internal/transport, implements
// that extension so clean (error-free) framework combinations can be
// driven end to end.
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"sync"
	"unicode"
)

// envelopeBufs recycles envelope serialization buffers across Marshal
// and MarshalFault calls — the same pattern as wsdl.Marshal, since the
// communication and fault-injection campaigns serialize one envelope
// pair per exchange.
var envelopeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Namespace constants for SOAP 1.1.
const (
	// NamespaceEnvelope is the SOAP 1.1 envelope namespace.
	NamespaceEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	// ContentType is the SOAP 1.1 HTTP content type.
	ContentType = "text/xml; charset=utf-8"
)

// Message is one SOAP body payload: a single document/literal wrapper
// element with simple-content children, which is exactly the message
// shape the study's echo services exchange.
type Message struct {
	// Namespace is the wrapper element's namespace (the service's
	// target namespace).
	Namespace string
	// Local is the wrapper element's local name (the operation name,
	// or operation name + "Response").
	Local string
	// Fields holds the child element values by local name.
	Fields map[string]string
}

// Field returns the named child value.
func (m *Message) Field(name string) (string, bool) {
	v, ok := m.Fields[name]
	return v, ok
}

// Fault is a SOAP 1.1 fault.
type Fault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
	Actor  string `xml:"faultactor,omitempty"`
	Detail string `xml:"detail,omitempty"`
}

// Error implements the error interface so transport code can return
// faults directly.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Fault codes defined by SOAP 1.1.
const (
	FaultClient = "soap:Client"
	FaultServer = "soap:Server"
)

// ErrNoBody is wrapped by DecodeError when an envelope carries
// neither a payload nor a fault.
var ErrNoBody = errors.New("envelope body is empty")

// DecodeError reports a malformed SOAP message.
type DecodeError struct {
	Reason string
	Err    error
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	if e.Err != nil {
		return "soap decode: " + e.Reason + ": " + e.Err.Error()
	}
	return "soap decode: " + e.Reason
}

// Unwrap exposes the wrapped cause.
func (e *DecodeError) Unwrap() error { return e.Err }

// ValidNCName reports whether s can be used as an XML element name:
// a non-colonized name starting with a letter or underscore. Marshal
// refuses names that fail this check — interpolating them into markup
// would emit a malformed (or, worse, differently-structured) envelope.
func ValidNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) {
			continue
		}
		if i > 0 && (r == '-' || r == '.' || unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// Marshal serializes a message into a SOAP 1.1 envelope. Children are
// written in sorted field order so output is deterministic. The
// wrapper and every field name must be valid XML NCNames: values are
// escaped, but names are structural markup and cannot be.
func Marshal(m *Message) ([]byte, error) {
	if m.Local == "" {
		return nil, errors.New("soap: message has no wrapper element name")
	}
	if !ValidNCName(m.Local) {
		return nil, fmt.Errorf("soap: wrapper name %q is not a valid XML NCName", m.Local)
	}
	for name := range m.Fields {
		if !ValidNCName(name) {
			return nil, fmt.Errorf("soap: field name %q is not a valid XML NCName", name)
		}
	}
	buf := envelopeBufs.Get().(*bytes.Buffer)
	defer envelopeBufs.Put(buf)
	buf.Reset()
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + NamespaceEnvelope + `">` + "\n")
	buf.WriteString("  <soap:Body>\n")
	fmt.Fprintf(buf, "    <m:%s xmlns:m=%q>\n", m.Local, m.Namespace)

	names := make([]string, 0, len(m.Fields))
	for k := range m.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(buf, "      <m:%s>%s</m:%s>\n", name, escape(m.Fields[name]), name)
	}

	fmt.Fprintf(buf, "    </m:%s>\n", m.Local)
	buf.WriteString("  </soap:Body>\n")
	buf.WriteString("</soap:Envelope>\n")
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// MarshalFault serializes a fault envelope.
func MarshalFault(f *Fault) ([]byte, error) {
	buf := envelopeBufs.Get().(*bytes.Buffer)
	defer envelopeBufs.Put(buf)
	buf.Reset()
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + NamespaceEnvelope + `">` + "\n")
	buf.WriteString("  <soap:Body>\n")
	buf.WriteString("    <soap:Fault>\n")
	fmt.Fprintf(buf, "      <faultcode>%s</faultcode>\n", escape(f.Code))
	fmt.Fprintf(buf, "      <faultstring>%s</faultstring>\n", escape(f.String))
	if f.Actor != "" {
		fmt.Fprintf(buf, "      <faultactor>%s</faultactor>\n", escape(f.Actor))
	}
	if f.Detail != "" {
		fmt.Fprintf(buf, "      <detail>%s</detail>\n", escape(f.Detail))
	}
	buf.WriteString("    </soap:Fault>\n")
	buf.WriteString("  </soap:Body>\n")
	buf.WriteString("</soap:Envelope>\n")
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

func escape(s string) string {
	var b bytes.Buffer
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// envelope is the parse-side wire structure.
type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    struct {
		Fault   *Fault  `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
		Payload payload `xml:",any"`
	} `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type payload struct {
	XMLName  xml.Name
	Children []child `xml:",any"`
}

type child struct {
	XMLName xml.Name
	Value   string `xml:",chardata"`
}

// Unmarshal parses a SOAP 1.1 envelope. It returns the message, or a
// *Fault as the error when the body carries a fault.
//
// Duplicate payload children are rejected with a DecodeError: Message
// carries one value per field name, and silently keeping the last
// occurrence would let a corrupted (or attacker-duplicated) envelope
// masquerade as a clean one.
func Unmarshal(data []byte) (*Message, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, &DecodeError{Reason: "malformed envelope", Err: err}
	}
	if env.Body.Fault != nil {
		return nil, env.Body.Fault
	}
	if env.Body.Payload.XMLName.Local == "" {
		return nil, &DecodeError{Reason: "no payload", Err: ErrNoBody}
	}
	m := &Message{
		Namespace: env.Body.Payload.XMLName.Space,
		Local:     env.Body.Payload.XMLName.Local,
		Fields:    make(map[string]string, len(env.Body.Payload.Children)),
	}
	for _, c := range env.Body.Payload.Children {
		if _, dup := m.Fields[c.XMLName.Local]; dup {
			return nil, &DecodeError{Reason: fmt.Sprintf("duplicate payload element %q", c.XMLName.Local)}
		}
		m.Fields[c.XMLName.Local] = c.Value
	}
	return m, nil
}
