// Package soap implements SOAP envelope codecs: building, serializing
// and parsing the request/response messages that client and server
// framework subsystems exchange during the Communication and
// Execution steps of the inter-operation lifecycle.
//
// The paper scopes those two steps out and announces them as future
// work; this package, together with internal/transport, implements
// that extension so clean (error-free) framework combinations can be
// driven end to end. The version-parameterized Codec API (codec.go)
// extends it further into the hybrid-version error class the paper
// never reached.
package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"unicode"
)

// envelopeBufs recycles envelope serialization buffers across Marshal
// and MarshalFault calls — the same pattern as wsdl.Marshal, since the
// communication and fault-injection campaigns serialize one envelope
// pair per exchange.
var envelopeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Namespace constants for SOAP 1.1.
const (
	// NamespaceEnvelope is the SOAP 1.1 envelope namespace.
	NamespaceEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	// ContentType is the SOAP 1.1 HTTP content type.
	ContentType = "text/xml; charset=utf-8"
)

// Message is one SOAP body payload: a single document/literal wrapper
// element with simple-content children, which is exactly the message
// shape the study's echo services exchange.
type Message struct {
	// Namespace is the wrapper element's namespace (the service's
	// target namespace).
	Namespace string
	// Local is the wrapper element's local name (the operation name,
	// or operation name + "Response").
	Local string
	// Fields holds the child element values by local name.
	Fields map[string]string
}

// Field returns the named child value.
func (m *Message) Field(name string) (string, bool) {
	v, ok := m.Fields[name]
	return v, ok
}

// Fault is a SOAP fault in version-neutral form: the 1.1 field names,
// onto which the 1.2 Code/Value, Reason/Text, Node and Detail
// structure is mapped by the V12 codec.
type Fault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
	Actor  string `xml:"faultactor,omitempty"`
	Detail string `xml:"detail,omitempty"`
}

// Error implements the error interface so transport code can return
// faults directly.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Fault codes defined by SOAP 1.1.
const (
	FaultClient = "soap:Client"
	FaultServer = "soap:Server"
)

// ErrNoBody is wrapped by DecodeError when an envelope carries
// neither a payload nor a fault.
var ErrNoBody = errors.New("envelope body is empty")

// DecodeError reports a malformed SOAP message.
type DecodeError struct {
	Reason string
	// Version carries the detected envelope version when the message
	// was rejected for version reasons (a 1.2 envelope handed to the
	// 1.1 codec, hybrid machinery inside a payload); VersionUnknown
	// otherwise.
	Version Version
	Err     error
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	if e.Err != nil {
		return "soap decode: " + e.Reason + ": " + e.Err.Error()
	}
	return "soap decode: " + e.Reason
}

// Unwrap exposes the wrapped cause.
func (e *DecodeError) Unwrap() error { return e.Err }

// ValidNCName reports whether s can be used as an XML element name:
// a non-colonized name starting with a letter or underscore. Marshal
// refuses names that fail this check — interpolating them into markup
// would emit a malformed (or, worse, differently-structured) envelope.
func ValidNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) {
			continue
		}
		if i > 0 && (r == '-' || r == '.' || unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// Marshal serializes a message into a SOAP 1.1 envelope.
//
// Deprecated: use V11.Marshal, or the Codec of the version in play.
func Marshal(m *Message) ([]byte, error) { return V11.Marshal(m) }

// MarshalFault serializes a SOAP 1.1 fault envelope.
//
// Deprecated: use V11.MarshalFault, or the Codec of the version in
// play.
func MarshalFault(f *Fault) ([]byte, error) { return V11.MarshalFault(f) }

// Unmarshal parses a SOAP 1.1 envelope. It returns the message, or a
// *Fault as the error when the body carries a fault.
//
// Deprecated: use V11.Unmarshal, or the Codec of the version in play;
// UnmarshalFlexible and UnmarshalCoerce model the lenient framework
// behaviors.
func Unmarshal(data []byte) (*Message, error) { return V11.Unmarshal(data) }

func escape(s string) string {
	var b bytes.Buffer
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
