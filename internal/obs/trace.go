package obs

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// TraceHeader is the HTTP request header carrying a campaign cell's
// trace ID on the wire. Every transport path (networked Client and
// in-process LocalBridge) stamps it when the invocation context
// carries a trace, so fault-injection logs and sniffer captures can be
// joined back to the (server, client, class) cell that produced the
// exchange.
const TraceHeader = "X-Wsinterop-Trace"

// TraceID mints the deterministic correlation ID for a campaign cell
// from its identifying components — typically (server, class) for a
// publish, (server, class, client) for a test cell, and (server,
// class, client, fault) for a robustness cell. The ID is a content
// address: the same components always produce the same ID, so any two
// records of one cell join without shared state. Components are
// length-prefixed before hashing, so ("ab","c") and ("a","bc") yield
// distinct IDs.
func TraceID(components ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, c := range components {
		binary.BigEndian.PutUint64(n[:], uint64(len(c)))
		h.Write(n[:])
		h.Write([]byte(c))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ctxKey is the private context key for trace IDs.
type ctxKey struct{}

// WithTrace attaches a trace ID to a context.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceFrom extracts the trace ID from a context; empty when none was
// attached.
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
