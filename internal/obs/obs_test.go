package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(0)                    // first bucket
	h.Observe(time.Millisecond)     // inclusive upper bound: first bucket
	h.Observe(time.Millisecond + 1) // second bucket
	h.Observe(10 * time.Millisecond)
	h.Observe(time.Second) // +Inf
	h.Observe(-time.Second)

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Count != 6 {
		t.Errorf("count = %d, want 6", hs.Count)
	}
	// Negative observations clamp to zero, so the ≤1ms bucket holds 3.
	want := []BucketCount{
		{LENanos: int64(time.Millisecond), Count: 3},
		{LENanos: int64(10 * time.Millisecond), Count: 5},
		{LENanos: InfBucket, Count: 6},
	}
	if !reflect.DeepEqual(hs.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	if hs.SumNanos != int64(time.Millisecond)+int64(time.Millisecond+1)+
		int64(10*time.Millisecond)+int64(time.Second) {
		t.Errorf("sum = %d", hs.SumNanos)
	}
}

func TestHistogramLayoutFixedAtCreation(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramBuckets("h", []time.Duration{time.Millisecond})
	b := r.HistogramBuckets("h", []time.Duration{time.Second, time.Minute})
	if a != b {
		t.Fatal("same name should return the same histogram")
	}
	if len(a.bounds) != 1 {
		t.Errorf("layout changed after creation: %v", a.bounds)
	}
}

func TestGaugeHighWater(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 {
		t.Errorf("value = %d, want 2", g.Value())
	}
	if g.Max() != 7 {
		t.Errorf("max = %d, want 7", g.Max())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(5)
	r.Histogram("z").Observe(time.Second)
	r.Emit(Event{Stage: "publish"})
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 || r.Histogram("z").Count() != 0 {
		t.Error("nil registry instruments must stay zero")
	}
	if len(r.Events()) != 0 {
		t.Error("nil registry must retain no events")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	if !r.Now().IsZero() || r.Since(time.Now()) != 0 {
		t.Error("nil registry clock must be inert")
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []string) *Snapshot {
		r := NewRegistryWithClock(func() time.Time { return time.Time{} })
		for _, name := range order {
			r.Counter(name).Add(int64(len(name)))
			r.Histogram("h." + name).Observe(0)
		}
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build([]string{"beta", "alpha", "gamma"}).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]string{"gamma", "beta", "alpha"}).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("snapshot JSON depends on creation order:\n%s\nvs\n%s", a.String(), b.String())
	}
	var parsed Snapshot
	if err := json.Unmarshal(a.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.publish.total").Add(7)
	r.Gauge("campaign.queue.depth").Set(3)
	r.Histogram("campaign.publish.seconds").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"campaign.publish.total", "7", "campaign.queue.depth",
		"campaign.publish.seconds", "≤2.5ms:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestTraceIDDeterministicAndDistinct(t *testing.T) {
	a := TraceID("Metro", "java.lang.String", "gSOAP")
	if a != TraceID("Metro", "java.lang.String", "gSOAP") {
		t.Error("trace ID must be deterministic")
	}
	if len(a) != 16 {
		t.Errorf("trace ID length = %d, want 16", len(a))
	}
	if a == TraceID("Metro", "java.lang.String", "gSOAP2") {
		t.Error("different cells must get different IDs")
	}
	// Length prefixing: component boundaries matter.
	if TraceID("ab", "c") == TraceID("a", "bc") {
		t.Error("component boundaries must be part of the address")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != "" {
		t.Error("fresh context should carry no trace")
	}
	ctx = WithTrace(ctx, "deadbeef01234567")
	if got := TraceFrom(ctx); got != "deadbeef01234567" {
		t.Errorf("TraceFrom = %q", got)
	}
}

func TestEventLogRing(t *testing.T) {
	var l EventLog
	for i := 0; i < eventLogCap+10; i++ {
		l.Append(Event{Trace: TraceID("s", "c"), Stage: "publish", ElapsedNanos: int64(i)})
	}
	events := l.Events()
	if len(events) != eventLogCap {
		t.Fatalf("retained = %d, want %d", len(events), eventLogCap)
	}
	if events[0].ElapsedNanos != 10 || events[len(events)-1].ElapsedNanos != eventLogCap+9 {
		t.Errorf("ring order wrong: first=%d last=%d",
			events[0].ElapsedNanos, events[len(events)-1].ElapsedNanos)
	}
	if l.Dropped() != 10 {
		t.Errorf("dropped = %d, want 10", l.Dropped())
	}
}

func TestFrozenClockHistogramsAreZero(t *testing.T) {
	t0 := time.Date(2014, 6, 23, 10, 0, 0, 0, time.UTC)
	r := NewRegistryWithClock(func() time.Time { return t0 })
	start := r.Now()
	r.Histogram("stage.seconds").Observe(r.Since(start))
	snap := r.Snapshot()
	if snap.Histograms[0].SumNanos != 0 {
		t.Errorf("frozen clock should observe zero durations, sum=%d", snap.Histograms[0].SumNanos)
	}
	if snap.Histograms[0].Buckets[0].Count != 1 {
		t.Error("zero duration must land in the first bucket")
	}
}
