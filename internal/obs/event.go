package obs

import "sync"

// Event is one structured campaign event: a lifecycle stage completing
// for one cell, correlated by trace ID. Events are a live diagnostic
// stream (the -debug endpoint serves them), not campaign outcome:
// retention is bounded and arrival order follows scheduling, so events
// sit outside the determinism contract.
type Event struct {
	// Trace is the cell's correlation ID (TraceID over the same
	// components recorded below).
	Trace string `json:"trace"`
	// Stage names the lifecycle stage ("publish", "wsi", "generate",
	// "compile", "communication", "robustness").
	Stage string `json:"stage"`
	// Server, Client and Class identify the cell; Client is empty for
	// server-only stages.
	Server string `json:"server,omitempty"`
	Client string `json:"client,omitempty"`
	Class  string `json:"class,omitempty"`
	// Detail carries the stage outcome ("ok", "fault", a fault name…).
	Detail string `json:"detail,omitempty"`
	// ElapsedNanos is the stage latency on the registry clock.
	ElapsedNanos int64 `json:"elapsedNanos"`
}

// eventLogCap bounds the retained event stream. The ring keeps the
// most recent events; older ones are dropped silently (Dropped counts
// them).
const eventLogCap = 512

// EventLog is a bounded ring of recent events. The zero value is
// ready.
type EventLog struct {
	mu      sync.Mutex
	ring    [eventLogCap]Event
	len     int
	next    int
	dropped int64
}

// Append records one event, evicting the oldest when full.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % eventLogCap
	if l.len < eventLogCap {
		l.len++
	} else {
		l.dropped++
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.len)
	start := (l.next - l.len + eventLogCap) % eventLogCap
	for i := 0; i < l.len; i++ {
		out = append(out, l.ring[(start+i)%eventLogCap])
	}
	return out
}

// Dropped reports how many events the ring evicted.
func (l *EventLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
