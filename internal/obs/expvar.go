package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's live snapshot under the
// "wsinterop" expvar name, so the standard /debug/vars endpoint
// carries the campaign metrics next to memstats. Safe to call more
// than once (expvar forbids duplicate names): later calls swap which
// registry the published variable reads.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("wsinterop", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
