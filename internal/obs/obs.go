// Package obs is the campaign observability layer: a lock-cheap,
// deterministic metrics registry (counters, gauges, fixed-bucket
// latency histograms), a bounded structured event stream, and the
// per-cell trace IDs that join wire-level records (fault-injection
// logs, sniffer captures) back to the (server, client, class) campaign
// cell that produced them.
//
// Determinism contract (DESIGN.md §8): counter values depend only on
// the work performed, never on worker count or scheduling — every
// increment site in the campaign is guarded by the same once-per-unit
// structure that makes the Result itself deterministic. Histogram
// *counts* inherit the same property; bucket placement depends on the
// injected clock, so with a frozen clock (every observation lasts
// zero) complete histograms are byte-identical across worker counts
// too. Gauges track live state (queue depth, worker count) and are
// explicitly outside the contract: determinism tests compare counters
// and histograms only.
//
// All registry methods are safe on a nil *Registry and nil instruments
// are no-ops, so instrumented code needs no "is observability on?"
// branches.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// DefBuckets is the default latency histogram layout: upper bounds in
// ascending order, with an implicit +Inf bucket appended. The spread
// covers the campaign's stage latencies (tens of microseconds for a
// memoized publish, up to seconds for a full-scale WS-I sweep).
var DefBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond,
	250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second,
}

// Counter is a monotonically increasing metric. The zero value is
// ready; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level metric that also tracks its high-water
// mark. Gauges report live state (queue depth, active workers) and are
// excluded from the determinism contract.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.water(n)
}

// Add moves the gauge by delta and returns nothing; the high-water
// mark follows the peak.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.water(g.v.Add(delta))
}

func (g *Gauge) water(n int64) {
	for {
		cur := g.max.Load()
		if n <= cur || g.max.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reads the current level; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reads the high-water mark; zero on nil.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket latency histogram. Bucket bounds are
// inclusive upper limits; an observation larger than every bound lands
// in the implicit +Inf bucket. The zero value is unusable — obtain
// histograms from a Registry so the bucket layout is fixed once.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative observations clamp to zero
// (a frozen or rewound clock must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count reads the total number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Registry names and owns instruments. Get-or-create lookups use a
// sync.Map so steady-state access is lock-free; hot paths should cache
// the returned instrument pointer and pay only the atomic operation.
type Registry struct {
	now        func() time.Time
	counters   sync.Map // string → *Counter
	gauges     sync.Map // string → *Gauge
	histograms sync.Map // string → *Histogram
	events     EventLog
}

// NewRegistry builds a registry on the real clock.
func NewRegistry() *Registry { return NewRegistryWithClock(time.Now) }

// NewRegistryWithClock builds a registry whose latency measurements
// read the given clock. Injecting a frozen clock makes histograms
// deterministic across worker counts (every observation is zero).
func NewRegistryWithClock(now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now}
}

// Now reads the registry clock; the zero time on nil.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.now()
}

// Since measures elapsed time on the registry clock.
func (r *Registry) Since(start time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return r.now().Sub(start)
}

// Counter returns the named counter, creating it on first use; nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use; nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram with the default bucket
// layout, creating it on first use; nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending bucket bounds on first use. The layout is fixed at
// creation; later calls return the existing histogram regardless of
// the bounds argument.
func (r *Registry) HistogramBuckets(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	h := &Histogram{bounds: append([]time.Duration(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	v, _ := r.histograms.LoadOrStore(name, h)
	return v.(*Histogram)
}

// Emit appends one event to the registry's bounded event stream.
func (r *Registry) Emit(e Event) {
	if r == nil {
		return
	}
	r.events.Append(e)
}

// Events returns a copy of the retained event stream, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.Events()
}

// InfBucket marks the +Inf bucket bound in snapshots.
const InfBucket = int64(math.MaxInt64)

// Snapshot is a point-in-time, deterministic export of a registry:
// every slice is sorted by name, so two registries that performed the
// same work marshal to identical JSON.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
	// Partial marks a snapshot taken from a run that ended in an error:
	// the instruments are consistent (every recorded unit of work is
	// counted) but the campaign they describe did not finish.
	Partial bool `json:"partial,omitempty"`
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramSnapshot is one histogram's exported state. Bucket counts
// are cumulative (à la Prometheus); the final bucket's bound is
// InfBucket and its count equals Count.
type HistogramSnapshot struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	SumNanos int64         `json:"sumNanos"`
	Buckets  []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	// LENanos is the bucket's inclusive upper bound in nanoseconds;
	// InfBucket for the overflow bucket.
	LENanos int64 `json:"leNanos"`
	// Count is the number of observations at or below the bound.
	Count int64 `json:"count"`
}

// Snapshot exports the registry's current state; nil registries export
// an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters = append(s.Counters, CounterSnapshot{Name: k.(string), Value: v.(*Counter).Value()})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		g := v.(*Gauge)
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k.(string), Value: g.Value(), Max: g.Max()})
		return true
	})
	r.histograms.Range(func(k, v any) bool {
		h := v.(*Histogram)
		hs := HistogramSnapshot{Name: k.(string), Count: h.count.Load(), SumNanos: h.sum.Load()}
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			bound := InfBucket
			if i < len(h.bounds) {
				bound = int64(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LENanos: bound, Count: cum})
		}
		s.Histograms = append(s.Histograms, hs)
		return true
	})
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as aligned human-readable tables.
func (s *Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "counter\tvalue")
	for _, c := range s.Counters {
		fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(tw, "\ngauge\tvalue\tmax")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%d\t%d\n", g.Name, g.Value, g.Max)
		}
	}
	fmt.Fprintln(tw, "\nhistogram\tcount\ttotal\tdistribution")
	for _, h := range s.Histograms {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n",
			h.Name, h.Count, time.Duration(h.SumNanos), bucketLine(h))
	}
	return tw.Flush()
}

// bucketLine compacts a histogram's occupied buckets into one cell:
// "≤1ms:12 ≤10ms:40 ≤+Inf:41" (cumulative counts, empty prefix
// buckets elided).
func bucketLine(h HistogramSnapshot) string {
	if h.Count == 0 {
		return "-"
	}
	out := ""
	prev := int64(0)
	for _, b := range h.Buckets {
		if b.Count == prev {
			continue
		}
		prev = b.Count
		bound := "+Inf"
		if b.LENanos != InfBucket {
			bound = time.Duration(b.LENanos).String()
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("≤%s:%d", bound, b.Count)
	}
	return out
}
