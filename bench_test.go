package wsinterop

// Benchmark harness: one benchmark per paper artifact (DESIGN.md §5)
// plus the ablation benches of DESIGN.md §6 and per-stage
// micro-benchmarks.
//
// The experiment benches (E1–E3) run the campaign at a reduced scale
// (benchLimit classes per catalog) so the suite completes quickly;
// BenchmarkFullCampaign executes the complete 79 629-test study —
// expect ~15 s per iteration — and is the definitive regenerator for
// Fig. 4 and Table III (also available as `go run ./cmd/interop`).

import (
	"context"
	"io"
	"os"
	"strconv"
	"testing"
	"time"

	"wsinterop/internal/campaign"
	"wsinterop/internal/framework"
	"wsinterop/internal/report"
	"wsinterop/internal/services"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// benchLimit caps per-catalog classes for the scaled campaign benches.
const benchLimit = 300

func runCampaign(b *testing.B, cfg campaign.Config) *campaign.Result {
	b.Helper()
	res, err := campaign.NewRunner(cfg).Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// reportTestsPerSec attaches the campaign throughput metric so the
// bench trajectory tracks tests/s alongside ns/op.
func reportTestsPerSec(b *testing.B, totalTests int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(totalTests)/s, "tests/s")
	}
}

// BenchmarkFig4Campaign regenerates the Fig. 4 overview (experiment
// E1) at benchmark scale.
func BenchmarkFig4Campaign(b *testing.B) {
	tests := 0
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, campaign.Config{Limit: benchLimit})
		tests += res.TotalTests
		if err := report.Fig4(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
	reportTestsPerSec(b, tests)
}

// BenchmarkAnalysisCache is the shared-analysis ablation (DESIGN.md
// §6.4): the scaled campaign with each published document parsed and
// analyzed once per service (cached) vs once per client test
// (reparse) — the two paths TestReparseEquivalence proves identical.
func BenchmarkAnalysisCache(b *testing.B) {
	for _, mode := range []struct {
		name    string
		reparse bool
	}{{"cached", false}, {"reparse", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tests := 0
			for i := 0; i < b.N; i++ {
				res := runCampaign(b, campaign.Config{Limit: benchLimit, Reparse: mode.reparse})
				tests += res.TotalTests
			}
			reportTestsPerSec(b, tests)
		})
	}
}

// BenchmarkShapeDedup is the structural-shape memo ablation (DESIGN.md
// §6.6): the scaled campaign with the memo on (default) vs off
// (Config.NoDedup, the -dedup=false CLI ablation) — the two paths
// TestDedupEquivalenceFull proves identical. The dedup run also
// reports the corpus's compression as classes per structural shape.
func BenchmarkShapeDedup(b *testing.B) {
	for _, mode := range []struct {
		name    string
		nodedup bool
	}{{"dedup", false}, {"nodedup", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tests := 0
			var stats campaign.DedupStats
			for i := 0; i < b.N; i++ {
				res := runCampaign(b, campaign.Config{Limit: benchLimit, NoDedup: mode.nodedup})
				tests += res.TotalTests
				stats = *res.Dedup
			}
			reportTestsPerSec(b, tests)
			if stats.Enabled && stats.Shapes > 0 {
				b.ReportMetric(float64(stats.PublishTotal)/float64(stats.Shapes), "classes/shape")
			}
		})
	}
}

// BenchmarkTableIII regenerates the Table III matrix (experiment E2)
// at benchmark scale.
func BenchmarkTableIII(b *testing.B) {
	tests := 0
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, campaign.Config{Limit: benchLimit})
		tests += res.TotalTests
		if err := report.TableIII(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
	reportTestsPerSec(b, tests)
}

// BenchmarkPlan measures execution-plan resolution at full study scale
// (DESIGN.md §12): cold builds walk every catalog and hash all 22 024
// classes; warm loads re-validate a cached plan — the partition check
// plus one builder re-hash per shape (~4 856 instead of 22 024).
func BenchmarkPlan(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.New().PlanSummary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := campaign.New(campaign.WithPlanCache(dir)).PlanSummary(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum, err := campaign.New(campaign.WithPlanCache(dir)).PlanSummary()
			if err != nil {
				b.Fatal(err)
			}
			if sum.Source != "cache" {
				b.Fatalf("plan source = %q, want cache", sum.Source)
			}
		}
	})
}

// BenchmarkFindings regenerates the §IV headline statistics
// (experiment E3) at benchmark scale.
func BenchmarkFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCampaign(b, campaign.Config{Limit: benchLimit})
		if err := report.Findings(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCampaign executes the complete study — 22 024 services,
// 79 629 tests — and is the full-scale regenerator for E1–E3.
// FULLCAMPAIGN_LIMIT caps classes per catalog for CI's reduced-catalog
// regression guard (make bench-check); unset, the complete study runs.
func BenchmarkFullCampaign(b *testing.B) {
	limit := 0
	if s := os.Getenv("FULLCAMPAIGN_LIMIT"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("FULLCAMPAIGN_LIMIT=%q: %v", s, err)
		}
		limit = n
	}
	cfg := campaign.Config{Limit: limit}
	// Resolve the execution plan once and share it across iterations:
	// the steady state of any process running repeated campaigns (the
	// -serve daemon adopts plans the same way). Plan resolution itself
	// is measured separately by BenchmarkPlan.
	plan, err := campaign.NewRunner(cfg).ExecutionPlan()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	tests := 0
	for i := 0; i < b.N; i++ {
		r := campaign.NewRunner(cfg)
		if err := r.AdoptPlan(plan); err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if limit == 0 && res.TotalTests != 79629 {
			b.Fatalf("tests = %d, want 79629", res.TotalTests)
		}
		tests += res.TotalTests
	}
	reportTestsPerSec(b, tests)
}

// BenchmarkServiceDescriptionGeneration measures the description step
// over the full catalogs (experiment E4: the 22 024 → 7 239 filter).
func BenchmarkServiceDescriptionGeneration(b *testing.B) {
	r := campaign.NewRunner(campaign.Config{})
	servers := framework.Servers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		published := 0
		for _, s := range servers {
			p, _, err := r.Publish(context.Background(), s)
			if err != nil {
				b.Fatal(err)
			}
			published += len(p)
		}
		if published != 7239 {
			b.Fatalf("published = %d, want 7239", published)
		}
	}
}

// BenchmarkDrilldowns runs the §IV.B narrative services through all
// eleven clients (experiment E5).
func BenchmarkDrilldowns(b *testing.B) {
	type pair struct {
		server framework.ServerFramework
		class  string
	}
	pairs := []pair{
		{framework.NewMetroServer(), typesys.JavaW3CEndpointReference},
		{framework.NewMetroServer(), typesys.JavaSimpleDateFormat},
		{framework.NewJBossWSServer(), typesys.JavaResponse},
		{framework.NewMetroServer(), typesys.JavaXMLGregorianCalendar},
		{framework.NewWCFServer(), typesys.CSharpDataTable},
		{framework.NewWCFServer(), typesys.CSharpSocketError},
	}
	type job struct {
		svc campaign.PublishedService
	}
	var jobs []job
	for _, p := range pairs {
		cat := typesys.JavaCatalog()
		if p.server.Language() == typesys.CSharp {
			cat = typesys.CSharpCatalog()
		}
		cls, ok := cat.Lookup(p.class)
		if !ok {
			b.Fatalf("class %s missing", p.class)
		}
		doc, err := p.server.Publish(services.ForClass(cls))
		if err != nil {
			b.Fatalf("publish %s: %v", p.class, err)
		}
		raw, err := wsdl.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, job{campaign.PublishedService{Server: p.server.Name(), Class: p.class, Doc: raw}})
	}
	clients := framework.Clients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			for _, c := range clients {
				campaign.RunTest(c, j.svc)
			}
		}
	}
}

// BenchmarkCommunication measures a live SOAP echo round trip
// (experiment E6 — the paper's future-work extension).
func BenchmarkCommunication(b *testing.B) {
	cat := typesys.JavaCatalog()
	var cls *typesys.Class
	for i := range cat.Classes {
		if cat.Classes[i].Kind == typesys.KindBean && cat.Classes[i].Hints == 0 {
			cls = &cat.Classes[i]
			break
		}
	}
	doc, err := framework.NewMetroServer().Publish(services.ForClass(cls))
	if err != nil {
		b.Fatal(err)
	}
	host := transport.NewHost()
	ep, err := host.DeployWSDL(doc)
	if err != nil {
		b.Fatal(err)
	}
	base, err := host.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = host.Shutdown(ctx)
	}()
	client := transport.NewClient(nil)
	req := &soap.Message{
		Namespace: ep.Namespace, Local: "echo",
		Fields: map[string]string{"input": "bench"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(context.Background(), base+ep.Path, "", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplexityVariants runs the scaled campaign at each service
// interface complexity (the paper's future-work extension): the error
// picture is class-driven, so variants cost only emission/parse time.
func BenchmarkComplexityVariants(b *testing.B) {
	for _, v := range services.Variants() {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCampaign(b, campaign.Config{Limit: benchLimit, Variant: v})
			}
		})
	}
}

// BenchmarkCommunicationCampaign measures the communication/execution
// extension (steps 4–5) at benchmark scale.
func BenchmarkCommunicationCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := campaign.NewRunner(campaign.Config{Limit: benchLimit})
		if _, err := r.RunCommunication(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallelism is the DESIGN.md §6.1 ablation: the
// scaled campaign with one worker vs the full pool.
func BenchmarkCampaignParallelism(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "pool"
		if workers == 1 {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCampaign(b, campaign.Config{Limit: benchLimit, Workers: workers})
			}
		})
	}
}

// benchNarrativeDoc publishes and serializes one document for the
// per-stage micro-benchmarks.
func benchNarrativeDoc(b *testing.B) ([]byte, *wsdl.Definitions) {
	b.Helper()
	cls, ok := typesys.CSharpCatalog().Lookup(typesys.CSharpDataTable)
	if !ok {
		b.Fatal("DataTable missing")
	}
	doc, err := framework.NewWCFServer().Publish(services.ForClass(cls))
	if err != nil {
		b.Fatal(err)
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		b.Fatal(err)
	}
	return raw, doc
}

// BenchmarkWSICheck is the DESIGN.md §6.2 ablation: cost of the early
// compliance check per document.
func BenchmarkWSICheck(b *testing.B) {
	_, doc := benchNarrativeDoc(b)
	checker := wsi.NewChecker()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Check(doc)
	}
}

// BenchmarkWSDLRoundTrip is the DESIGN.md §6.3 ablation: the cost of
// handing documents between subsystems as serialized XML.
func BenchmarkWSDLRoundTrip(b *testing.B) {
	_, doc := benchNarrativeDoc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := wsdl.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wsdl.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWSDLMarshal measures serialization alone.
func BenchmarkWSDLMarshal(b *testing.B) {
	_, doc := benchNarrativeDoc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wsdl.Marshal(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWSDLUnmarshal measures parsing alone.
func BenchmarkWSDLUnmarshal(b *testing.B) {
	raw, _ := benchNarrativeDoc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wsdl.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientGeneration measures the artifact generation step per
// client family on one representative document.
func BenchmarkClientGeneration(b *testing.B) {
	raw, _ := benchNarrativeDoc(b)
	for _, c := range framework.Clients() {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Generate(raw)
			}
		})
	}
}

// BenchmarkCompile measures the artifact verification step on a unit
// that compiles with warnings (Axis2 on a case-colliding type).
func BenchmarkCompile(b *testing.B) {
	raw, _ := benchNarrativeDoc(b)
	client := framework.NewAxis2Client()
	gen := client.Generate(raw)
	if gen.Unit == nil {
		b.Fatal("generation failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Verify(gen.Unit)
	}
}

// BenchmarkSOAPRoundTrip measures envelope encode+decode without HTTP.
func BenchmarkSOAPRoundTrip(b *testing.B) {
	msg := &soap.Message{
		Namespace: "http://bench.test/", Local: "echo",
		Fields: map[string]string{"input": "payload", "count": "7"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := soap.V11.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := soap.V11.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogConstruction measures Preparation Phase catalog
// synthesis (both platforms).
func BenchmarkCatalogConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Use the internal builders indirectly: Generate walks every
		// class of the shared catalogs.
		if n := len(services.Generate(typesys.JavaCatalog())); n != typesys.JavaTotal {
			b.Fatalf("java services = %d", n)
		}
		if n := len(services.Generate(typesys.CSharpCatalog())); n != typesys.CSharpTotal {
			b.Fatalf("csharp services = %d", n)
		}
	}
}
